"""Unit tests for the C parser."""

import pytest

from repro.cfront import (
    ArraySubscriptExpr,
    BinaryOperator,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    ConditionalOperator,
    ContinueStmt,
    DeclRefExpr,
    DeclStmt,
    DoStmt,
    ExprStmt,
    FloatingLiteral,
    ForStmt,
    FunctionDecl,
    GotoStmt,
    IfStmt,
    IntegerLiteral,
    LabelStmt,
    MemberExpr,
    ParseError,
    ReturnStmt,
    SizeofExpr,
    StructDecl,
    SwitchStmt,
    TypedefDecl,
    UnaryOperator,
    VarDecl,
    WhileStmt,
    parse_loop,
    parse_source,
    parse_statements,
)


def first_stmt(source):
    return parse_statements(source).stmts[0]


def expr_of(source):
    stmt = first_stmt(source + ";")
    assert isinstance(stmt, ExprStmt)
    return stmt.expr


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = expr_of("a + b * c")
        assert isinstance(e, BinaryOperator) and e.op == "+"
        assert isinstance(e.rhs, BinaryOperator) and e.rhs.op == "*"

    def test_parens_override_precedence(self):
        e = expr_of("(a + b) * c")
        assert e.op == "*"
        assert isinstance(e.lhs, BinaryOperator) and e.lhs.op == "+"

    def test_left_associativity(self):
        e = expr_of("a - b - c")
        assert e.op == "-"
        assert isinstance(e.lhs, BinaryOperator) and e.lhs.op == "-"
        assert isinstance(e.rhs, DeclRefExpr) and e.rhs.name == "c"

    def test_assignment_right_associative(self):
        e = expr_of("a = b = c")
        assert e.op == "="
        assert isinstance(e.rhs, BinaryOperator) and e.rhs.op == "="

    def test_compound_assignment(self):
        e = expr_of("x += y * 2")
        assert e.is_assignment and e.is_compound_assignment
        assert e.op == "+="

    def test_plain_assignment_not_compound(self):
        e = expr_of("x = y")
        assert e.is_assignment and not e.is_compound_assignment

    def test_ternary(self):
        e = expr_of("a ? b : c")
        assert isinstance(e, ConditionalOperator)

    def test_nested_ternary_right_assoc(self):
        e = expr_of("a ? b : c ? d : e")
        assert isinstance(e.els, ConditionalOperator)

    def test_comma_operator(self):
        e = expr_of("a = 1, b = 2")
        assert e.op == ","

    def test_logical_and_or_precedence(self):
        e = expr_of("a || b && c")
        assert e.op == "||"
        assert e.rhs.op == "&&"

    def test_relational_chain(self):
        e = expr_of("a < b == c")
        assert e.op == "=="
        assert e.lhs.op == "<"

    def test_shift_and_bitwise(self):
        e = expr_of("a | b ^ c & d << 2")
        assert e.op == "|"
        assert e.rhs.op == "^"
        assert e.rhs.rhs.op == "&"
        assert e.rhs.rhs.rhs.op == "<<"

    def test_unary_prefix(self):
        e = expr_of("-x")
        assert isinstance(e, UnaryOperator) and e.prefix and e.op == "-"

    def test_prefix_and_postfix_incdec(self):
        pre = expr_of("++i")
        post = expr_of("i++")
        assert pre.prefix and not post.prefix
        assert pre.is_incdec and post.is_incdec

    def test_deref_and_addressof(self):
        e = expr_of("*p = &x")
        assert isinstance(e.lhs, UnaryOperator) and e.lhs.op == "*"
        assert isinstance(e.rhs, UnaryOperator) and e.rhs.op == "&"

    def test_array_subscript_nested(self):
        e = expr_of("a[i][j]")
        assert isinstance(e, ArraySubscriptExpr)
        assert isinstance(e.base, ArraySubscriptExpr)
        assert e.base.base.name == "a"

    def test_call_with_args(self):
        e = expr_of("f(a, b + 1, g())")
        assert isinstance(e, CallExpr)
        assert e.name == "f"
        assert len(e.args) == 3
        assert isinstance(e.args[2], CallExpr)

    def test_call_no_args(self):
        assert expr_of("f()").args == []

    def test_member_dot_and_arrow(self):
        dot = expr_of("s.x")
        arrow = expr_of("p->x")
        assert isinstance(dot, MemberExpr) and not dot.is_arrow
        assert isinstance(arrow, MemberExpr) and arrow.is_arrow

    def test_chained_member_array(self):
        e = expr_of("objetivo[i].r")
        assert isinstance(e, MemberExpr)
        assert isinstance(e.base, ArraySubscriptExpr)

    def test_arrow_then_subscript_then_dot(self):
        e = expr_of("individuo->imagen[i].r")
        assert isinstance(e, MemberExpr) and e.member == "r"
        inner = e.base
        assert isinstance(inner, ArraySubscriptExpr)
        assert isinstance(inner.base, MemberExpr) and inner.base.is_arrow

    def test_cast(self):
        e = expr_of("(double)x")
        assert isinstance(e, CastExpr)
        assert e.to_type.base == "double"

    def test_cast_pointer(self):
        e = expr_of("(char *)p")
        assert isinstance(e, CastExpr)
        assert e.to_type.pointers == 1

    def test_paren_expr_is_not_cast(self):
        e = expr_of("(x) + 1")
        assert isinstance(e, BinaryOperator) and e.op == "+"

    def test_sizeof_type_and_expr(self):
        t = expr_of("sizeof(int)")
        x = expr_of("sizeof(x)")
        assert isinstance(t, SizeofExpr) and t.arg.base == "int"
        assert isinstance(x, SizeofExpr) and isinstance(x.arg, DeclRefExpr)

    def test_literals(self):
        assert expr_of("42").value == 42
        assert expr_of("0x10").value == 16
        assert expr_of("2.5").value == 2.5
        assert isinstance(expr_of("3.0f"), FloatingLiteral)

    def test_string_concatenation(self):
        e = expr_of('"ab" "cd"')
        assert e.text == '"abcd"'

    def test_unexpected_token_raises(self):
        with pytest.raises(ParseError):
            expr_of("a + ;")


class TestStatements:
    def test_compound_collects_statements(self):
        block = parse_statements("x = 1; y = 2; z = 3;")
        assert len(block.stmts) == 3

    def test_null_statement(self):
        stmt = first_stmt(";")
        assert isinstance(stmt, ExprStmt) and stmt.expr is None

    def test_if_else(self):
        stmt = first_stmt("if (a) x = 1; else x = 2;")
        assert isinstance(stmt, IfStmt) and stmt.els is not None

    def test_dangling_else_binds_inner(self):
        stmt = first_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.els is None
        assert isinstance(stmt.then, IfStmt) and stmt.then.els is not None

    def test_for_with_decl_init(self):
        stmt = first_stmt("for (int i = 0; i < n; i++) x += i;")
        assert isinstance(stmt, ForStmt)
        assert isinstance(stmt.init, DeclStmt)
        assert stmt.init.decls[0].name == "i"

    def test_for_with_expr_init(self):
        stmt = first_stmt("for (i = 0; i < n; i++) ;")
        assert isinstance(stmt.init, ExprStmt)

    def test_for_empty_clauses(self):
        stmt = first_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.inc is None

    def test_while(self):
        stmt = first_stmt("while (k < 5000) k++;")
        assert isinstance(stmt, WhileStmt)

    def test_do_while(self):
        stmt = first_stmt("do { x--; } while (x > 0);")
        assert isinstance(stmt, DoStmt)

    def test_do_without_while_raises(self):
        with pytest.raises(ParseError):
            parse_statements("do { x--; } until (x);")

    def test_break_continue(self):
        block = parse_statements("while (1) { if (a) break; continue; }")
        body = block.stmts[0].body
        assert isinstance(body.stmts[0].then, BreakStmt)
        assert isinstance(body.stmts[1], ContinueStmt)

    def test_return_with_and_without_value(self):
        assert first_stmt("return 1 + 2;").value is not None
        assert first_stmt("return;").value is None

    def test_switch_case_default(self):
        stmt = first_stmt(
            "switch (x) { case 1: y = 1; break; default: y = 0; }"
        )
        assert isinstance(stmt, SwitchStmt)

    def test_goto_and_label(self):
        block = parse_statements("again: x++; goto again;")
        assert isinstance(block.stmts[0], LabelStmt)
        assert isinstance(block.stmts[1], GotoStmt)
        assert block.stmts[1].label == "again"

    def test_decl_with_multiple_declarators(self):
        stmt = first_stmt("int x = 1, y, z = 3;")
        assert isinstance(stmt, DeclStmt)
        assert [d.name for d in stmt.decls] == ["x", "y", "z"]
        assert stmt.decls[1].init is None

    def test_array_decl(self):
        stmt = first_stmt("double a[100][200];")
        d = stmt.decls[0]
        assert len(d.var_type.array_dims) == 2
        assert d.var_type.is_array

    def test_pointer_decl(self):
        stmt = first_stmt("float *p;")
        assert stmt.decls[0].var_type.pointers == 1

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse_source("int f() { int x = 1;")


class TestPragmas:
    def test_pragma_attached_to_loop(self):
        block = parse_statements(
            "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;"
        )
        assert block.stmts[0].pragmas == ["pragma omp parallel for"]

    def test_multiple_pragmas_attached_in_order(self):
        block = parse_statements(
            "#pragma omp parallel\n#pragma omp for\nfor (;;) break;"
        )
        assert block.stmts[0].pragmas == ["pragma omp parallel", "pragma omp for"]

    def test_pragma_not_leaked_to_next_statement(self):
        block = parse_statements(
            "#pragma omp parallel for\nfor (;;) break;\nx = 1;"
        )
        assert block.stmts[1].pragmas == []

    def test_non_omp_pragma_still_attached(self):
        block = parse_statements("#pragma unroll(4)\nfor (;;) break;")
        assert block.stmts[0].pragmas == ["pragma unroll(4)"]


class TestDeclarations:
    def test_function_definition(self):
        tu = parse_source("int add(int a, int b) { return a + b; }")
        fn = tu.functions()[0]
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]
        assert fn.body is not None

    def test_function_prototype(self):
        tu = parse_source("double fabs(double x);")
        fn = tu.functions()[0]
        assert fn.body is None

    def test_void_param_list(self):
        tu = parse_source("int f(void) { return 0; }")
        assert tu.functions()[0].params == []

    def test_variadic(self):
        tu = parse_source("int printf(const char *fmt, ...);")
        assert tu.functions()[0].is_variadic

    def test_global_variable(self):
        tu = parse_source("static double cache[1024];")
        var = tu.decls[0]
        assert isinstance(var, VarDecl)
        assert "static" in var.var_type.qualifiers

    def test_typedef_registers_name(self):
        tu = parse_source("typedef unsigned long size_t;\nsize_t n;")
        assert isinstance(tu.decls[0], TypedefDecl)
        assert isinstance(tu.decls[1], VarDecl)
        assert tu.decls[1].var_type.base == "size_t"

    def test_struct_definition_and_use(self):
        tu = parse_source(
            "struct point { int x; int y; };\nstruct point origin;"
        )
        var = tu.decls[-1]
        assert var.var_type.base == "struct point"

    def test_typedef_struct(self):
        tu = parse_source("typedef struct point { int x, y; } point_t;\npoint_t p;")
        assert tu.decls[-1].var_type.base == "point_t"

    def test_enum(self):
        tu = parse_source("enum color { RED, GREEN = 2, BLUE };\nint c;")
        assert len(tu.decls) == 2

    def test_function_lookup(self):
        tu = parse_source("int f() { return 1; }\nint g() { return 2; }")
        assert tu.function("g").name == "g"
        assert tu.function("missing") is None

    def test_implicit_int(self):
        tu = parse_source("const x = 3;")
        assert tu.decls[0].var_type.base == "int"


class TestParseLoop:
    def test_returns_first_loop(self):
        loop = parse_loop("int n = 10;\nfor (int i = 0; i < n; i++) s += i;")
        assert isinstance(loop, ForStmt)

    def test_while_loop_snippet(self):
        loop = parse_loop("while (x > 0) x--;")
        assert isinstance(loop, WhileStmt)

    def test_no_loop_raises(self):
        with pytest.raises(ParseError):
            parse_loop("x = 1;")

    def test_free_variables_allowed(self):
        loop = parse_loop("for (i = 0; i < n; i++) a[i] = b[i];")
        names = {n.name for n in loop.find_all(DeclRefExpr)}
        assert {"i", "n", "a", "b"} <= names


class TestNodeTraversal:
    def test_walk_preorder(self):
        loop = parse_loop("for (i = 0; i < 3; i++) x = x + 1;")
        kinds = [n.kind for n in loop.walk()]
        assert kinds[0] == "ForStmt"
        assert "BinaryOperator" in kinds

    def test_children_in_source_order(self):
        loop = parse_loop("for (i = 0; i < 3; i++) x++;")
        child_kinds = [c.kind for c in loop.children()]
        assert child_kinds == ["ExprStmt", "BinaryOperator", "UnaryOperator", "ExprStmt"]

    def test_find_all(self):
        loop = parse_loop("for (i = 0; i < 3; i++) a[i] = f(i);")
        assert len(list(loop.find_all(CallExpr))) == 1
        assert len(list(loop.find_all(ArraySubscriptExpr))) == 1
