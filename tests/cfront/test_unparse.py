"""Unparser round-trip and formatting tests."""

import pytest

from repro.cfront import loc_of, parse_loop, parse_source, parse_statements, unparse


def unparse_stmts(source):
    """Unparse a statement snippet without the synthetic block wrapper."""
    block = parse_statements(source)
    return "\n".join(unparse(s) for s in block.stmts)


ROUND_TRIP_SNIPPETS = [
    "x = a + b * c;",
    "x = (a + b) * c;",
    "x = a - (b - c);",
    "x = a / b / c;",
    "x = a - b - c;",
    "y = -x + !z;",
    "p = &a[i];",
    "x = *p + p->next->value;",
    "q = a ? b : c ? d : e;",
    "x = (a ? b : c) + 1;",
    "f(a, b + 1, g(c));",
    "a[i][j] = b[j][i];",
    "x = (double)n / m;",
    "n = sizeof(double) * count;",
    "x += y <<= 2;",
    "i++, j--;",
    "s.field = t->field;",
    "x = a % b == 0;",
    "mask = a & b | c ^ d;",
    "x = a << 2 >> 1;",
    "ok = a < b && c >= d || !e;",
]


@pytest.mark.parametrize("snippet", ROUND_TRIP_SNIPPETS)
def test_expression_round_trip(snippet):
    """parse -> unparse -> parse -> unparse is a fixed point."""
    once = unparse_stmts(snippet)
    twice = unparse_stmts(once)
    assert once == twice


STATEMENT_SNIPPETS = [
    "if (a > 0) x = 1; else { x = 2; y = 3; }",
    "while (i < n) { a[i] = 0; i++; }",
    "do x--; while (x);",
    "for (int i = 0, j = 0; i < n; i += 2) s += a[i];",
    "for (;;) break;",
    "switch (op) { case 1: x = 1; break; default: x = 0; }",
    "top: if (x) goto top;",
    "return a + b;",
    "{ int x = 1; { int y = 2; } }",
]


@pytest.mark.parametrize("snippet", STATEMENT_SNIPPETS)
def test_statement_round_trip(snippet):
    once = unparse_stmts(snippet)
    twice = unparse_stmts(once)
    assert once == twice


PROGRAMS = [
    "int main(void) { return 0; }",
    "double fabs(double x);\nint g;\nint use(void) { return fabs(g); }",
    "typedef struct pair { int a, b; } pair_t;\nint f(pair_t p) { return p.a; }",
    "struct node { struct node *next; int v; };\n"
    "int len(struct node *p) { int n = 0; while (p) { n++; p = p->next; } return n; }",
]


@pytest.mark.parametrize("program", PROGRAMS)
def test_program_round_trip(program):
    once = unparse(parse_source(program))
    twice = unparse(parse_source(once))
    assert once == twice


class TestSemanticPreservation:
    def test_precedence_parens_preserved(self):
        assert "(a + b) * c" in unparse_stmts("x = (a + b) * c;")

    def test_redundant_parens_removed(self):
        assert "x = a + b;" in unparse_stmts("x = ((a)) + ((b));")

    def test_right_assoc_subtraction_parens_kept(self):
        assert "a - (b - c)" in unparse_stmts("x = a - (b - c);")

    def test_unary_on_binary_parenthesized(self):
        assert "-(a + b)" in unparse_stmts("x = -(a + b);")

    def test_pragma_emitted_before_loop(self):
        src = "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;"
        out = unparse_stmts(src)
        lines = out.splitlines()
        idx = next(i for i, ln in enumerate(lines) if "#pragma" in ln)
        assert "for (" in lines[idx + 1]

    def test_cast_round_trip(self):
        assert "(float)(a + b)" in unparse_stmts("x = (float)(a + b);")


class TestLocOf:
    def test_single_line_loop(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += a[i];")
        assert loc_of(loop) == 2  # header + body line

    def test_block_loop(self):
        loop = parse_loop("for (i = 0; i < n; i++) { s += a[i]; t += b[i]; }")
        assert loc_of(loop) == 5  # header, braces, two body lines

    def test_loc_counts_nonblank_only(self):
        loop = parse_loop("for (i = 0; i < n; i++) s++;")
        assert loc_of(loop) >= 1
