"""Unit tests for the C lexer."""

import pytest

from repro.cfront.errors import LexError
from repro.cfront.lexer import Lexer, tokenize
from repro.cfront.tokens import Token, TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("int foo; for while_loop")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT
        assert toks[3].kind is TokenKind.KEYWORD
        assert toks[4].kind is TokenKind.IDENT  # while_loop is not a keyword

    def test_identifier_with_digits_and_underscores(self):
        assert texts("_x9 __foo a1b2")[0] == "_x9"
        assert texts("_x9 __foo a1b2") == ["_x9", "__foo", "a1b2"]

    def test_eof_sentinel_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("x")[-1].kind is TokenKind.EOF

    def test_token_indices_are_sequential(self):
        toks = tokenize("a + b * c")
        assert [t.index for t in toks] == list(range(len(toks)))

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestNumbers:
    def test_decimal_int(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT_CONST
        assert toks[0].text == "42"

    def test_hex_and_octal(self):
        assert kinds("0xFF 0755") == [TokenKind.INT_CONST] * 2

    def test_int_suffixes(self):
        assert kinds("10u 10UL 10ll") == [TokenKind.INT_CONST] * 3

    def test_float_forms(self):
        for text in ["1.5", "1.", ".5", "1e10", "1.5e-3", "2E+4", "1.0f", "3.14F"]:
            toks = tokenize(text)
            assert toks[0].kind is TokenKind.FLOAT_CONST, text

    def test_float_suffix_makes_float(self):
        assert tokenize("10f")[0].kind is TokenKind.FLOAT_CONST

    def test_number_at_eof_terminates(self):
        # Regression: "" in "uUlLfF" is True, which once caused a hang.
        toks = tokenize("1024")
        assert toks[0].text == "1024"
        assert toks[-1].kind is TokenKind.EOF

    def test_dot_not_followed_by_digit_is_punct(self):
        assert texts("a.b") == ["a", ".", "b"]

    def test_ellipsis_vs_member_dot(self):
        assert "..." in texts("f(int x, ...)")


class TestStringsAndChars:
    def test_simple_string(self):
        toks = tokenize('"hello"')
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].text == '"hello"'

    def test_string_with_escapes(self):
        assert tokenize(r'"a\"b\n"')[0].text == r'"a\"b\n"'

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_char_literals(self):
        assert tokenize("'x'")[0].kind is TokenKind.CHAR_CONST
        assert tokenize(r"'\n'")[0].kind is TokenKind.CHAR_CONST

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'ab")


class TestComments:
    def test_line_comment_dropped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_dropped(self):
        assert texts("a /* many\n lines */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_comment_inside_pragma_line(self):
        toks = tokenize("#pragma omp parallel for /* note */\nx;")
        assert toks[0].kind is TokenKind.PRAGMA


class TestPunctuators:
    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a--") == ["a", "--"]

    def test_all_compound_assigns(self):
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "<<=", ">>="]:
            assert op in texts(f"x {op} 1")

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestPreprocessor:
    def test_pragma_becomes_token(self):
        toks = tokenize("#pragma omp parallel for\nfor(;;);")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[0].text == "pragma omp parallel for"

    def test_include_recorded_not_tokenized(self):
        result = Lexer('#include <stdio.h>\nint x;').lex()
        assert result.includes == ["include <stdio.h>"]
        assert result.tokens[0].is_keyword("int")

    def test_simple_define_substituted(self):
        toks = tokenize("#define N 1024\nint a[N];")
        assert any(t.text == "1024" and t.kind is TokenKind.INT_CONST for t in toks)
        assert not any(t.text == "N" for t in toks)

    def test_function_like_define_not_substituted(self):
        toks = tokenize("#define SQR(x) ((x)*(x))\nint y = SQR(3);")
        assert any(t.text == "SQR" for t in toks)

    def test_multi_token_define_left_alone(self):
        toks = tokenize("#define EXPR a + b\nint y = EXPR;")
        assert any(t.text == "EXPR" for t in toks)

    def test_line_splicing(self):
        assert texts("a\\\nb") == ["ab"]

    def test_define_records_value(self):
        result = Lexer("#define LIMIT 500\n").lex()
        assert result.defines == {"LIMIT": "500"}

    def test_ifdef_lines_dropped(self):
        assert texts("#ifdef FOO\nint x;\n#endif") == ["int", "x", ";"]


class TestTokenHelpers:
    def test_is_punct(self):
        tok = Token(TokenKind.PUNCT, "+")
        assert tok.is_punct("+", "-")
        assert not tok.is_punct("-")

    def test_is_keyword(self):
        tok = Token(TokenKind.KEYWORD, "for")
        assert tok.is_keyword("for", "while")
        assert not tok.is_keyword("while")

    def test_ident_is_not_punct(self):
        assert not Token(TokenKind.IDENT, "+").is_punct("+")
