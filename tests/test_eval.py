"""Structural tests for the experiment harness (tiny config).

These exercise every table/figure module end to end with a minimal
dataset and 1-epoch models — asserting row structure and invariants, not
model quality (quality shapes are asserted by benchmarks/).
"""

import pytest

from repro.eval import (
    ExperimentConfig,
    ExperimentResult,
    casestudy,
    coverage,
    figure2,
    get_context,
    overhead,
    render_table,
    table1,
    table3,
    table4,
)
from repro.eval.context import ExperimentContext

TINY = ExperimentConfig(scale=0.006, seed=11, epochs=1, dim=16, heads=2,
                        layers=1, batch_size=16)


@pytest.fixture(scope="module")
def ctx():
    return get_context(TINY)


class TestResultContainer:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_empty(self):
        assert render_table([]) == "(empty)"

    def test_row_for(self):
        r = ExperimentResult(name="t", rows=[{"k": 1, "v": "x"},
                                             {"k": 2, "v": "y"}])
        assert r.row_for(k=2)["v"] == "y"
        assert r.row_for(k=9) is None

    def test_column(self):
        r = ExperimentResult(name="t", rows=[{"k": 1}, {"k": 2}])
        assert r.column("k") == [1, 2]

    def test_render_includes_paper_reference(self):
        r = ExperimentResult(name="T", rows=[{"x": 1}],
                             paper_reference=[{"x": 99}])
        out = r.render()
        assert "paper reported" in out and "99" in out


class TestConfig:
    def test_profiles(self):
        assert ExperimentConfig.fast().scale < ExperimentConfig.paper().scale

    def test_with_override(self):
        cfg = ExperimentConfig.fast().with_(scale=0.5)
        assert cfg.scale == 0.5

    def test_frozen_hashable(self):
        assert hash(ExperimentConfig.fast()) == hash(ExperimentConfig.fast())


class TestContextCaching:
    def test_same_config_same_context(self):
        assert get_context(TINY) is get_context(TINY)

    def test_dataset_cached(self, ctx):
        assert ctx.dataset is ctx.dataset

    def test_split_is_stable(self, ctx):
        a = ctx.split
        b = ctx.split
        assert a is b

    def test_tool_verdicts_aligned_with_dataset(self, ctx):
        verdicts = ctx.tool_verdicts("pluto")
        assert len(verdicts) == len(ctx.dataset)

    def test_graph_model_cached(self, ctx):
        m1 = ctx.graph_model(representation="aug", task="parallel")
        m2 = ctx.graph_model(representation="aug", task="parallel")
        assert m1 is m2


class TestExperimentsStructure:
    def test_table1(self, ctx):
        result = table1.run(TINY)
        assert result.rows
        assert all("loops" in r for r in result.rows)
        assert result.paper_reference

    def test_figure2(self, ctx):
        result = figure2.run(TINY)
        assert {r["tool"] for r in result.rows} == {"pluto", "autopar",
                                                    "discopop"}
        for row in result.rows:
            assert all(v >= 0 for k, v in row.items() if k != "tool")

    def test_table3_counts_bounded(self, ctx):
        result = table3.run(TINY)
        n_parallel = len(ctx.dataset.parallel_loops())
        for row in result.rows:
            assert 0 <= row["detected_parallel_loops"] <= n_parallel

    def test_table4_tool_soundness(self, ctx):
        result = table4.run(TINY)
        for row in result.rows:
            if row["approach"] in ("PLUTO", "autoPar", "DiscoPoP"):
                assert row["FP"] == 0

    def test_coverage_fractions(self, ctx):
        result = coverage.run(TINY)
        for row in result.rows:
            assert 0.0 <= row["file_gated_loop_coverage"] <= 1.0
            assert row["file_gated_loop_coverage"] <= row["loop_level_only"]

    def test_overhead_rows(self, ctx):
        result = overhead.run(TINY, max_loops=30)
        stages = {r["stage"] for r in result.rows}
        assert "total per loop" in stages
        total = result.row_for(stage="total per loop")
        assert total["avg_ms"] > 0

    def test_casestudy_listings_structure(self):
        rows = casestudy.run_listings()
        assert len(rows) == 8
        listing1 = next(r for r in rows if r["listing"] == "listing1")
        assert listing1["matches_paper"] is True


class TestFigure2Classifier:
    def test_classify_priorities(self):
        from repro.dataset.sample import LoopSample

        red_call = LoopSample(source="", parallel=True, category="reduction",
                              has_call=True)
        assert figure2.classify(red_call) == \
            "loops_with_reduction_and_function_call"
        red = LoopSample(source="", parallel=True, category="reduction")
        assert figure2.classify(red) == "loops_with_reduction"
        call = LoopSample(source="", parallel=True, category="private",
                          has_call=True)
        assert figure2.classify(call) == "loops_with_function_call"
        nested = LoopSample(source="", parallel=True, category="private",
                            nested=True)
        assert figure2.classify(nested) == "nested_loops"
        plain = LoopSample(source="", parallel=True, category="parallel")
        assert figure2.classify(plain) == "others"
