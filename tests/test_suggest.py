"""Tests for pragma suggestion/generation (the paper's future-work item)."""

import numpy as np
import pytest

from repro.suggest import PragmaSuggester, Suggestion, agreement


class _StubModel:
    """predict_samples stub returning a fixed answer."""

    def __init__(self, value: int) -> None:
        self.value = value

    def predict_samples(self, samples):
        return np.full(len(samples), self.value, dtype=int)


def make_suggester(parallel=1, **clauses):
    defaults = {"reduction": 0, "private": 0, "simd": 0, "target": 0}
    defaults.update(clauses)
    return PragmaSuggester(
        _StubModel(parallel),
        {k: _StubModel(v) for k, v in defaults.items()},
    )


class TestSuggestLoop:
    def test_sequential_prediction(self):
        s = make_suggester(parallel=0).suggest_loop(
            "for (i = 1; i < n; i++) a[i] = a[i-1];"
        )
        assert not s.parallel and s.pragma is None
        assert "sequential" in s.render()

    def test_reduction_grounded_in_analysis(self):
        s = make_suggester(parallel=1, reduction=1).suggest_loop(
            "for (i = 0; i < n; i++) total += a[i];"
        )
        assert s.parallel
        assert "reduction(+:total)" in s.pragma

    def test_product_reduction_operator(self):
        s = make_suggester(parallel=1, reduction=1).suggest_loop(
            "for (i = 0; i < n; i++) p *= a[i];"
        )
        assert "reduction(*:p)" in s.pragma

    def test_private_variables_listed(self):
        s = make_suggester(parallel=1, private=1).suggest_loop(
            "for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }"
        )
        assert "private(t)" in s.pragma

    def test_simd_directive(self):
        s = make_suggester(parallel=1, simd=1).suggest_loop(
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];"
        )
        assert "simd" in s.pragma

    def test_target_composite(self):
        s = make_suggester(parallel=1, target=1).suggest_loop(
            "for (i = 0; i < n; i++) a[i] = b[i] * c[i];"
        )
        assert s.pragma.startswith("#pragma omp target teams distribute")

    def test_plain_parallel_for(self):
        s = make_suggester(parallel=1).suggest_loop(
            "for (i = 0; i < n; i++) a[i] = 0;"
        )
        assert s.pragma == "#pragma omp parallel for"

    def test_analysis_overrides_missing_reduction_prediction(self):
        # Even when the clause model says no, a detected accumulator must
        # be protected by a reduction clause for correctness.
        s = make_suggester(parallel=1, reduction=0).suggest_loop(
            "for (i = 0; i < n; i++) total += a[i];"
        )
        assert "reduction(+:total)" in s.pragma

    def test_unparseable_loop_is_sequential(self):
        s = make_suggester().suggest_loop("for (i = 0; i < n;")
        assert not s.parallel
        assert "unparseable" in s.rationale

    def test_render_inserts_pragma_above_loop(self):
        s = make_suggester(parallel=1).suggest_loop(
            "for (i = 0; i < n; i++) a[i] = 0;"
        )
        lines = s.render().splitlines()
        assert lines[0].startswith("#pragma omp")
        assert lines[1].startswith("for")


class TestSuggestFile:
    SOURCE = """
    double a[100], b[100]; double s;
    void kernel(void) {
        int i;
        for (i = 0; i < 100; i++) a[i] = b[i];
        for (i = 1; i < 100; i++) a[i] = a[i-1];
    }
    """

    def test_one_suggestion_per_loop(self):
        suggester = make_suggester(parallel=1)
        suggestions = suggester.suggest_file(self.SOURCE)
        assert len(suggestions) == 2


class TestAgreement:
    def test_matching_reduction(self):
        a = agreement(
            "#pragma omp parallel for reduction(+:s)",
            "#pragma omp parallel for reduction(+:s)",
        )
        assert a["both_present"] and a["directive_match"] and a["reduction_match"]

    def test_different_reduction_var(self):
        a = agreement(
            "#pragma omp parallel for reduction(+:s)",
            "#pragma omp parallel for reduction(+:t)",
        )
        assert not a["reduction_match"]

    def test_target_mismatch(self):
        a = agreement(
            "#pragma omp parallel for",
            "#pragma omp target parallel for",
        )
        assert not a["directive_match"]

    def test_none_pair(self):
        assert agreement(None, None)["both_present"]
        assert not agreement(None, "#pragma omp for")["both_present"]
