"""Tests for pragma suggestion/generation (the paper's future-work item)."""

import numpy as np
import pytest

from repro.suggest import PragmaSuggester, Suggestion, agreement


class _StubModel:
    """predict_samples stub returning a fixed answer."""

    def __init__(self, value: int) -> None:
        self.value = value

    def predict_samples(self, samples):
        return np.full(len(samples), self.value, dtype=int)


def make_suggester(parallel=1, **clauses):
    defaults = {"reduction": 0, "private": 0, "simd": 0, "target": 0}
    defaults.update(clauses)
    return PragmaSuggester(
        _StubModel(parallel),
        {k: _StubModel(v) for k, v in defaults.items()},
    )


class TestSuggestLoop:
    def test_sequential_prediction(self):
        s = make_suggester(parallel=0).suggest_loop(
            "for (i = 1; i < n; i++) a[i] = a[i-1];"
        )
        assert not s.parallel and s.pragma is None
        assert "sequential" in s.render()

    def test_reduction_grounded_in_analysis(self):
        s = make_suggester(parallel=1, reduction=1).suggest_loop(
            "for (i = 0; i < n; i++) total += a[i];"
        )
        assert s.parallel
        assert "reduction(+:total)" in s.pragma

    def test_product_reduction_operator(self):
        s = make_suggester(parallel=1, reduction=1).suggest_loop(
            "for (i = 0; i < n; i++) p *= a[i];"
        )
        assert "reduction(*:p)" in s.pragma

    def test_private_variables_listed(self):
        s = make_suggester(parallel=1, private=1).suggest_loop(
            "for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }"
        )
        assert "private(t)" in s.pragma

    def test_simd_directive(self):
        s = make_suggester(parallel=1, simd=1).suggest_loop(
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];"
        )
        assert "simd" in s.pragma

    def test_target_composite(self):
        s = make_suggester(parallel=1, target=1).suggest_loop(
            "for (i = 0; i < n; i++) a[i] = b[i] * c[i];"
        )
        assert s.pragma.startswith("#pragma omp target teams distribute")

    def test_plain_parallel_for(self):
        s = make_suggester(parallel=1).suggest_loop(
            "for (i = 0; i < n; i++) a[i] = 0;"
        )
        assert s.pragma == "#pragma omp parallel for"

    def test_analysis_overrides_missing_reduction_prediction(self):
        # Even when the clause model says no, a detected accumulator must
        # be protected by a reduction clause for correctness.
        s = make_suggester(parallel=1, reduction=0).suggest_loop(
            "for (i = 0; i < n; i++) total += a[i];"
        )
        assert "reduction(+:total)" in s.pragma

    def test_unparseable_loop_is_sequential(self):
        s = make_suggester().suggest_loop("for (i = 0; i < n;")
        assert not s.parallel
        assert "unparseable" in s.rationale

    def test_render_inserts_pragma_above_loop(self):
        s = make_suggester(parallel=1).suggest_loop(
            "for (i = 0; i < n; i++) a[i] = 0;"
        )
        lines = s.render().splitlines()
        assert lines[0].startswith("#pragma omp")
        assert lines[1].startswith("for")


class TestSuggestBatch:
    def test_order_aligned_with_requests(self):
        suggester = make_suggester(parallel=1, reduction=1)
        sources = [
            "for (i = 0; i < n; i++) total += a[i];",
            "for (i = 0; i < n;",                      # unparseable
            "for (i = 0; i < n; i++) a[i] = 0;",
        ]
        out = suggester.suggest_batch(sources)
        assert len(out) == 3
        assert "reduction(+:total)" in out[0].pragma
        assert not out[1].parallel and "unparseable" in out[1].rationale
        assert out[2].parallel

    def test_matches_per_loop_path(self):
        suggester = make_suggester(parallel=1, private=1, simd=1)
        sources = [
            "for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }",
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
        ]
        batched = suggester.suggest_batch(sources)
        singles = [suggester.suggest_loop(src) for src in sources]
        assert [s.render() for s in batched] == [s.render() for s in singles]

    def test_one_model_call_per_task(self):
        suggester = make_suggester(parallel=1, reduction=1)
        calls = {"parallel": 0}
        orig = suggester.parallel_model.predict_samples

        def counting(samples):
            calls["parallel"] += 1
            return orig(samples)

        suggester.parallel_model.predict_samples = counting
        suggester.suggest_batch([
            "for (i = 0; i < n; i++) a[i] = 0;",
            "for (i = 0; i < n; i++) b[i] = 1;",
            "for (i = 0; i < n; i++) c[i] = 2;",
        ])
        assert calls["parallel"] == 1

    def test_empty_batch(self):
        assert make_suggester().suggest_batch([]) == []

    def test_duplicate_requests_computed_once(self):
        suggester = make_suggester(parallel=1)
        sizes = []
        orig = suggester.parallel_model.predict_samples

        def counting(samples):
            sizes.append(len(samples))
            return orig(samples)

        suggester.parallel_model.predict_samples = counting
        src = "for (i = 0; i < n; i++) a[i] = 0;"
        out = suggester.suggest_batch([src, src, src])
        assert sizes == [1]                   # deduped before the model
        assert [s.render() for s in out] == [out[0].render()] * 3


class TestSuggestFile:
    SOURCE = """
    double a[100], b[100]; double s;
    void kernel(void) {
        int i;
        for (i = 0; i < 100; i++) a[i] = b[i];
        for (i = 1; i < 100; i++) a[i] = a[i-1];
    }
    """

    TWO_FUNCTIONS = """
    double a[100]; double t; double out;
    void good(void) {
        int i;
        for (i = 0; i < 100; i++) { t = a[i] * 2; a[i] = t; }
        out = t;
    }
    void other(void) {
        int i;
        for (i = 0; i < 100; i++) a[i] = a[i] + 1;
        for (i = 0; i < 100; i++) a[i] = a[i] * 2;
    }
    """

    def test_one_suggestion_per_loop(self):
        suggester = make_suggester(parallel=1)
        suggestions = suggester.suggest_file(self.SOURCE)
        assert len(suggestions) == 2

    def test_post_loop_read_becomes_lastprivate(self):
        suggester = make_suggester(parallel=1, private=1)
        suggestions = suggester.suggest_file(self.TWO_FUNCTIONS)
        assert "lastprivate(t)" in suggestions[0].pragma

    def test_liveness_survives_misalignment_in_other_function(
            self, monkeypatch):
        # Regression: a loop-count mismatch in ONE function used to drop
        # liveness for ALL loops of the file (the defensive global
        # fallback), silently losing lastprivate correctness elsewhere.
        import repro.suggest as suggest_mod

        real = suggest_mod._outermost_loops

        def crooked(body):
            loops = real(body)
            # simulate an analysis/extraction disagreement in other()
            return loops[:-1] if len(loops) == 2 else loops

        monkeypatch.setattr(suggest_mod, "_outermost_loops", crooked)
        suggester = make_suggester(parallel=1, private=1)
        suggestions = suggester.suggest_file(self.TWO_FUNCTIONS)
        assert len(suggestions) == 3
        # good() is aligned: its liveness must survive other()'s mismatch
        assert "lastprivate(t)" in suggestions[0].pragma


class TestAgreement:
    def test_matching_reduction(self):
        a = agreement(
            "#pragma omp parallel for reduction(+:s)",
            "#pragma omp parallel for reduction(+:s)",
        )
        assert a["both_present"] and a["directive_match"] and a["reduction_match"]

    def test_different_reduction_var(self):
        a = agreement(
            "#pragma omp parallel for reduction(+:s)",
            "#pragma omp parallel for reduction(+:t)",
        )
        assert not a["reduction_match"]

    def test_target_mismatch(self):
        a = agreement(
            "#pragma omp parallel for",
            "#pragma omp target parallel for",
        )
        assert not a["directive_match"]

    def test_none_pair(self):
        assert agreement(None, None)["both_present"]
        assert not agreement(None, "#pragma omp for")["both_present"]

    def test_clause_only_pragma_is_not_usable(self):
        # "omp private(t)" has no directive: parse raises PragmaError,
        # which agreement must absorb rather than crash the bench.
        a = agreement("#pragma omp private(t)",
                      "#pragma omp parallel for private(t)")
        assert a == {"both_present": False, "directive_match": False,
                     "reduction_match": False}

    def test_malformed_pragma_strings(self):
        for bad in ("#pragma omp parallel for reduction(total)",   # no op
                    "#pragma omp parallel for reduction(%:x)",     # bad op
                    "#pragma omp parallel for private(t",          # unbalanced
                    "#pragma omp"):                                # empty
            a = agreement(bad, "#pragma omp parallel for")
            assert not a["both_present"], bad
            assert not a["directive_match"], bad

    def test_non_omp_pragma_returns_not_present(self):
        a = agreement("#pragma unroll(4)", "#pragma omp parallel for")
        assert not a["both_present"]
