"""Tests for vocabularies, graph encoding and batching."""

import numpy as np
import pytest

from repro.cfront import parse_loop
from repro.graphs import (
    CollateCache,
    EdgeType,
    EncodeCache,
    GraphVocab,
    RELATIONS,
    Vocab,
    build_aug_ast,
    build_graph_vocab,
    collate,
    encode_graph,
)

LOOPS = [
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 0; i < n; i++) a[i] = b[i] * 2;",
    "while (k < 100) k++;",
]


def graphs():
    return [build_aug_ast(parse_loop(src)) for src in LOOPS]


class TestVocab:
    def test_unk_is_id_zero(self):
        v = Vocab()
        assert v["<unk>"] == 0
        assert v["missing"] == 0

    def test_add_and_lookup(self):
        v = Vocab()
        idx = v.add("ForStmt")
        assert v["ForStmt"] == idx

    def test_add_is_idempotent(self):
        v = Vocab()
        assert v.add("x") == v.add("x")

    def test_frozen_vocab_maps_new_tokens_to_unk(self):
        v = Vocab()
        v.add("known")
        v.freeze()
        assert v.add("new-token") == 0
        assert "new-token" not in v

    def test_round_trip_dict(self):
        v = Vocab()
        v.add("a"), v.add("b")
        v.freeze()
        again = Vocab.from_dict(v.to_dict())
        assert again["b"] == v["b"]
        assert again.frozen

    def test_graph_vocab_save_load(self, tmp_path):
        gv = build_graph_vocab(graphs())
        path = tmp_path / "vocab.json"
        gv.save(path)
        again = GraphVocab.load(path)
        assert again.types.tokens == gv.types.tokens
        assert again.texts.tokens == gv.texts.tokens

    def test_build_graph_vocab_covers_all_types(self):
        gv = build_graph_vocab(graphs())
        for g in graphs():
            for t in g.node_types:
                assert t in gv.types


class TestEncodeGraph:
    def test_shapes(self):
        gv = build_graph_vocab(graphs())
        g = graphs()[0]
        enc = encode_graph(g, gv, label=1)
        n = g.num_nodes
        assert enc.type_ids.shape == (n,)
        assert enc.text_ids.shape == (n,)
        assert enc.position_ids.shape == (n,)
        assert enc.is_leaf.shape == (n,)
        assert enc.label == 1

    def test_every_relation_key_present(self):
        gv = build_graph_vocab(graphs())
        enc = encode_graph(graphs()[0], gv)
        assert set(enc.edges) == set(RELATIONS)

    def test_edge_array_shape(self):
        gv = build_graph_vocab(graphs())
        enc = encode_graph(graphs()[0], gv)
        for rel, arr in enc.edges.items():
            assert arr.shape[0] == 2
            if arr.size:
                assert arr.max() < enc.num_nodes

    def test_unknown_type_encodes_to_unk(self):
        gv = build_graph_vocab(graphs()[:1])
        gv.freeze()
        do_loop = build_aug_ast(parse_loop("do x--; while (x);"))
        enc = encode_graph(do_loop, gv)
        assert enc.type_ids[0] == 0  # DoStmt unseen -> UNK


class TestCollate:
    def test_node_counts_add_up(self):
        gv = build_graph_vocab(graphs())
        encs = [encode_graph(g, gv, label=i % 2) for i, g in enumerate(graphs())]
        batch = collate(encs)
        assert batch.num_nodes == sum(e.num_nodes for e in encs)
        assert batch.num_graphs == len(encs)

    def test_graph_ids_partition_nodes(self):
        gv = build_graph_vocab(graphs())
        encs = [encode_graph(g, gv) for g in graphs()]
        batch = collate(encs)
        counts = np.bincount(batch.graph_ids, minlength=len(encs))
        assert list(counts) == [e.num_nodes for e in encs]

    def test_edges_offset_into_correct_blocks(self):
        gv = build_graph_vocab(graphs())
        encs = [encode_graph(g, gv) for g in graphs()]
        batch = collate(encs)
        offsets = np.cumsum([0] + [e.num_nodes for e in encs[:-1]])
        for rel in RELATIONS:
            arr = batch.edges[rel]
            for col in range(arr.shape[1]):
                src, dst = arr[0, col], arr[1, col]
                # src and dst must fall in the same graph block
                assert batch.graph_ids[src] == batch.graph_ids[dst]

    def test_labels_preserved(self):
        gv = build_graph_vocab(graphs())
        encs = [encode_graph(g, gv, label=i) for i, g in enumerate(graphs())]
        batch = collate(encs)
        assert list(batch.labels) == [0, 1, 2]

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            collate([])

    def test_single_graph_batch(self):
        gv = build_graph_vocab(graphs())
        enc = encode_graph(graphs()[0], gv)
        batch = collate([enc])
        assert batch.num_graphs == 1
        assert (batch.graph_ids == 0).all()

    def test_single_graph_batch_preserves_arrays(self):
        gv = build_graph_vocab(graphs())
        enc = encode_graph(graphs()[0], gv, label=1)
        batch = collate([enc])
        assert (batch.type_ids == enc.type_ids).all()
        for rel in RELATIONS:
            assert (batch.edges[rel] == enc.edges[rel]).all()
        assert list(batch.labels) == [1]

    def test_relation_empty_in_every_graph_stays_empty(self):
        gv = build_graph_vocab(graphs())
        encs = [encode_graph(g, gv) for g in graphs()]
        rel = RELATIONS[0]
        for enc in encs:
            enc.edges[rel] = np.zeros((2, 0), dtype=np.int64)
        batch = collate(encs)
        assert batch.edges[rel].shape == (2, 0)
        assert batch.edges[rel].dtype == np.int64

    def test_all_relations_empty(self):
        gv = build_graph_vocab(graphs())
        encs = [encode_graph(g, gv) for g in graphs()[:2]]
        for enc in encs:
            for rel in RELATIONS:
                enc.edges[rel] = np.zeros((2, 0), dtype=np.int64)
        batch = collate(encs)
        assert batch.num_nodes == sum(e.num_nodes for e in encs)
        for rel in RELATIONS:
            assert batch.edges[rel].shape == (2, 0)


class TestEncodeCache:
    def test_identical_source_hits(self):
        gv = build_graph_vocab(graphs())
        cache = EncodeCache(gv, representation="aug")
        a = cache.encode_loop(LOOPS[0])
        b = cache.encode_loop(LOOPS[0])
        assert a is b
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_matches_uncached_encoding(self):
        gv = build_graph_vocab(graphs())
        cache = EncodeCache(gv, representation="aug")
        cached = cache.encode_loop(LOOPS[0])
        direct = encode_graph(build_aug_ast(parse_loop(LOOPS[0])), gv)
        assert (cached.type_ids == direct.type_ids).all()
        assert (cached.text_ids == direct.text_ids).all()
        for rel in RELATIONS:
            assert (cached.edges[rel] == direct.edges[rel]).all()

    def test_label_applied_without_mutating_cache(self):
        gv = build_graph_vocab(graphs())
        cache = EncodeCache(gv)
        labelled = cache.encode_loop(LOOPS[0], label=1)
        assert labelled.label == 1
        assert cache.encode_loop(LOOPS[0]).label == 0
        # arrays are shared, only the dataclass shell differs
        assert labelled.type_ids is cache.encode_loop(LOOPS[0]).type_ids

    def test_lru_eviction(self):
        gv = build_graph_vocab(graphs())
        cache = EncodeCache(gv, max_entries=2)
        for src in LOOPS:
            cache.encode_loop(src)
        assert len(cache) == 2
        cache.encode_loop(LOOPS[0])   # evicted earlier -> miss again
        assert cache.misses == 4

    def test_rejects_unknown_representation(self):
        with pytest.raises(ValueError):
            EncodeCache(GraphVocab(), representation="nope")


class TestCollateCache:
    def _encoded(self):
        gs = graphs()
        vocab = build_graph_vocab(gs)
        return [encode_graph(g, vocab) for g in gs]

    def test_hit_returns_same_batch_object(self):
        data = self._encoded()
        cache = CollateCache()
        first = cache.collate(data)
        first.struct_cache["probe"] = "kept"
        again = cache.collate(data)
        assert again is first
        assert again.struct_cache["probe"] == "kept"
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_different_order_is_different_batch(self):
        data = self._encoded()
        cache = CollateCache()
        a = cache.collate(data)
        b = cache.collate(list(reversed(data)))
        assert a is not b
        assert cache.stats()["misses"] == 2

    def test_matches_plain_collate(self):
        data = self._encoded()
        cached = CollateCache().collate(data)
        plain = collate(data)
        assert cached.type_ids.tobytes() == plain.type_ids.tobytes()
        assert cached.graph_ids.tobytes() == plain.graph_ids.tobytes()
        for rel in RELATIONS:
            assert cached.edges[rel].tobytes() == plain.edges[rel].tobytes()

    def test_lru_eviction(self):
        data = self._encoded()
        cache = CollateCache(max_entries=2)
        a = cache.collate(data[:1])
        cache.collate(data[1:2])
        cache.collate(data[2:3])       # evicts the first entry
        assert len(cache) == 2
        b = cache.collate(data[:1])    # miss again
        assert b is not a
        assert cache.stats()["hits"] == 0
