"""Tests for the augmented heterogeneous AST builder."""

import pytest

from repro.cfront import parse_loop
from repro.graphs import EdgeType, build_aug_ast, build_vanilla_ast

LISTING1 = (
    "for (i = 0; i < 30000000; i++)\n"
    "    error = error + fabs(a[i] - a[i+1]);"
)


class TestVanillaAST:
    def test_one_graph_node_per_ast_node(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += i;")
        graph = build_vanilla_ast(loop)
        assert graph.num_nodes == sum(1 for _ in loop.walk())

    def test_ast_edges_form_spanning_tree(self):
        loop = parse_loop(LISTING1)
        graph = build_vanilla_ast(loop)
        graph.validate()  # raises if the AST edges are not a spanning tree
        ast_edges = graph.edges_of_type(EdgeType.AST)
        assert len(ast_edges) == graph.num_nodes - 1

    def test_reverse_edge_per_ast_edge(self):
        graph = build_vanilla_ast(parse_loop(LISTING1))
        assert len(graph.edges_of_type(EdgeType.AST_REV)) == len(
            graph.edges_of_type(EdgeType.AST)
        )

    def test_no_cfg_or_lexical_edges(self):
        graph = build_vanilla_ast(parse_loop(LISTING1))
        assert not graph.edges_of_type(EdgeType.CFG)
        assert not graph.edges_of_type(EdgeType.LEX)

    def test_root_is_for_stmt(self):
        graph = build_vanilla_ast(parse_loop(LISTING1))
        assert graph.node_types[0] == "ForStmt"

    def test_heterogeneous_types_present(self):
        graph = build_vanilla_ast(parse_loop(LISTING1))
        assert {"ForStmt", "BinaryOperator", "DeclRefExpr", "CallExpr"} <= (
            graph.type_set()
        )


class TestAlphaRenaming:
    def test_variables_renamed_in_first_occurrence_order(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += a[i];")
        graph = build_vanilla_ast(loop)
        ref_texts = [
            graph.node_texts[k]
            for k in range(graph.num_nodes)
            if graph.node_types[k] == "DeclRefExpr"
        ]
        # i first, then n, s, a
        assert ref_texts == ["v0", "v0", "v1", "v0", "v2", "v3", "v0"]

    def test_function_names_in_f_namespace(self):
        graph = build_aug_ast(parse_loop(LISTING1))
        texts = set(graph.node_texts)
        assert "f0" in texts  # fabs
        assert all(not t.startswith("f") or t in ("f0",) or not t[1:].isdigit()
                   for t in texts if t)

    def test_same_variable_same_text(self):
        loop = parse_loop("for (i = 0; i < 3; i++) x = x + 1;")
        graph = build_vanilla_ast(loop)
        x_ids = [
            graph.node_texts[k]
            for k in range(graph.num_nodes)
            if graph.node_types[k] == "DeclRefExpr"
            and graph.node_texts[k].startswith("v")
        ]
        # x appears twice, both occurrences share a rename
        assert x_ids.count("v1") == 2

    def test_literals_bucketed(self):
        loop = parse_loop("for (i = 0; i < 30000000; i += 2) s += 0.0;")
        graph = build_vanilla_ast(loop)
        texts = set(graph.node_texts)
        assert "int:0" in texts
        assert "int:large" in texts
        assert "int:2" in texts
        assert "float:zero" in texts

    def test_operator_text_preserved(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += i;")
        graph = build_vanilla_ast(loop)
        assert "+=" in set(graph.node_texts)
        assert "<" in set(graph.node_texts)


class TestCFGEdges:
    def test_cfg_edges_present(self):
        graph = build_aug_ast(parse_loop(LISTING1))
        assert graph.edges_of_type(EdgeType.CFG)

    def test_cfg_edges_absent_when_disabled(self):
        graph = build_aug_ast(parse_loop(LISTING1), with_cfg=False)
        assert not graph.edges_of_type(EdgeType.CFG)

    def test_call_node_in_cfg_edges(self):
        """Figure 3: the fabs call node receives a CFG edge."""
        loop = parse_loop(LISTING1)
        graph = build_aug_ast(loop)
        call_gid = next(
            k for k in range(graph.num_nodes)
            if graph.node_types[k] == "CallExpr"
        )
        cfg_dsts = {d for s, d in graph.edges_of_type(EdgeType.CFG)}
        assert call_gid in cfg_dsts

    def test_cfg_edges_are_within_range(self):
        graph = build_aug_ast(parse_loop(LISTING1))
        graph.validate()


class TestLexicalEdges:
    def test_lexical_chain_over_leaves(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += a[i];")
        graph = build_aug_ast(loop)
        lex = graph.edges_of_type(EdgeType.LEX)
        leaves = [k for k in range(graph.num_nodes) if graph.node_is_leaf[k]]
        # A chain over L leaves has L-1 edges; only token-bearing leaves
        # (identifiers/literals) participate.
        token_leaves = [
            k for k in leaves
            if graph.node_types[k] in (
                "DeclRefExpr", "IntegerLiteral", "FloatingLiteral",
                "CharLiteral", "StringLiteral",
            )
        ]
        assert len(lex) == len(token_leaves) - 1

    def test_lexical_edges_follow_source_order(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += a[i];")
        graph = build_aug_ast(loop)
        lex = graph.edges_of_type(EdgeType.LEX)
        # First lexical edge starts at the first token: 'i' (v0)
        first_src = lex[0][0]
        assert graph.node_texts[first_src] == "v0"

    def test_disabled_lexical(self):
        graph = build_aug_ast(parse_loop(LISTING1), with_lexical=False)
        assert not graph.edges_of_type(EdgeType.LEX)


class TestGraphShape:
    def test_aug_ast_strictly_richer_than_vanilla(self):
        loop = parse_loop(LISTING1)
        vanilla = build_vanilla_ast(loop)
        aug = build_aug_ast(loop)
        assert aug.num_nodes == vanilla.num_nodes
        assert aug.num_edges > vanilla.num_edges

    def test_meta_carried(self):
        graph = build_aug_ast(parse_loop(LISTING1), meta={"category": "reduction"})
        assert graph.meta["category"] == "reduction"

    def test_positions_reflect_child_order(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += i;")
        graph = build_aug_ast(loop)
        # Root children: init(0), cond(1), inc(2), body(3)
        root_children = [d for s, d in graph.edges_of_type(EdgeType.AST) if s == 0]
        positions = [graph.node_positions[c] for c in root_children]
        assert positions == [0, 1, 2, 3]

    def test_while_loop_graph(self):
        graph = build_aug_ast(parse_loop("while (k < 5000) k++;"))
        assert graph.node_types[0] == "WhileStmt"
        assert graph.edges_of_type(EdgeType.CFG)

    def test_to_dot_contains_nodes_and_colors(self):
        dot = build_aug_ast(parse_loop(LISTING1)).to_dot()
        assert "digraph" in dot and "color=red" in dot and "color=orange" in dot
