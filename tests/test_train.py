"""Tests for metrics and trainers."""

import numpy as np
import pytest

from repro.dataset import DatasetConfig, generate_omp_serial
from repro.models import Graph2Par, Graph2ParConfig, PragFormer, PragFormerConfig
from repro.train import (
    BinaryMetrics,
    GraphTrainer,
    TokenTrainer,
    TrainConfig,
    classification_metrics,
    confusion_counts,
    prepare_graph_data,
    prepare_token_data,
)


class TestBinaryMetrics:
    def test_perfect(self):
        m = BinaryMetrics(tp=10, tn=10, fp=0, fn=0)
        assert m.precision == m.recall == m.f1 == m.accuracy == 1.0

    def test_zero_division_guards(self):
        m = BinaryMetrics(tp=0, tn=0, fp=0, fn=0)
        assert m.precision == m.recall == m.f1 == m.accuracy == 0.0

    def test_known_values(self):
        # PLUTO row of paper Table 4: TP=1593, FN=2439.
        m = BinaryMetrics(tp=1593, tn=0, fp=0, fn=2439)
        assert m.precision == 1.0
        assert m.recall == pytest.approx(0.3951, abs=1e-3)
        assert m.f1 == pytest.approx(0.5664, abs=1e-3)
        assert m.accuracy == pytest.approx(0.3951, abs=1e-3)

    def test_confusion_counts(self):
        preds = np.array([1, 1, 0, 0, 1])
        labels = np.array([1, 0, 0, 1, 1])
        m = confusion_counts(preds, labels)
        assert (m.tp, m.tn, m.fp, m.fn) == (2, 1, 1, 1)

    def test_as_row_keys(self):
        row = BinaryMetrics(1, 2, 3, 4).as_row()
        assert set(row) == {"TP", "TN", "FP", "FN", "precision", "recall",
                            "f1", "accuracy"}


class TestClassificationMetrics:
    def test_perfect_macro(self):
        preds = labels = np.array([0, 1, 0, 1])
        m = classification_metrics(preds, labels)
        assert m["accuracy"] == 1.0 and m["f1"] == 1.0

    def test_all_wrong(self):
        m = classification_metrics(np.array([1, 0]), np.array([0, 1]))
        assert m["accuracy"] == 0.0

    def test_macro_average_balances_classes(self):
        # Majority-class predictor on 3:1 imbalance: high accuracy,
        # mediocre macro F1.
        preds = np.array([1, 1, 1, 1])
        labels = np.array([1, 1, 1, 0])
        m = classification_metrics(preds, labels)
        assert m["accuracy"] == 0.75
        assert m["f1"] < 0.75


@pytest.fixture(scope="module")
def tiny_dataset():
    ds = generate_omp_serial(DatasetConfig(scale=0.008, seed=3))
    return ds.train_test_split(test_fraction=0.3, seed=3)


class TestPrepareData:
    def test_prepare_graph_shapes(self, tiny_dataset):
        train, _ = tiny_dataset
        data, vocab = prepare_graph_data(train[:20])
        assert len(data) == 20
        assert vocab.num_types > 3

    def test_prepare_graph_with_existing_vocab(self, tiny_dataset):
        train, test = tiny_dataset
        _, vocab = prepare_graph_data(train[:10])
        data, vocab2 = prepare_graph_data(test[:5], vocab=vocab)
        assert vocab2 is vocab

    def test_unknown_representation_raises(self, tiny_dataset):
        train, _ = tiny_dataset
        with pytest.raises(ValueError):
            prepare_graph_data(train[:2], representation="nope")

    def test_custom_label_fn(self, tiny_dataset):
        train, _ = tiny_dataset
        data, _ = prepare_graph_data(
            train[:20], label_fn=lambda s: int(s.category == "reduction"),
        )
        labels = {g.label for g in data}
        assert labels <= {0, 1}

    def test_prepare_token_shapes(self, tiny_dataset):
        train, _ = tiny_dataset
        ids, mask, labels, vocab = prepare_token_data(train[:16])
        assert ids.shape == mask.shape
        assert ids.shape[0] == 16
        assert labels.shape == (16,)

    def test_prepare_graph_with_encode_cache(self, tiny_dataset):
        from repro.graphs import EncodeCache

        train, _ = tiny_dataset
        plain, vocab = prepare_graph_data(train[:10])
        cache = EncodeCache(vocab, representation="aug")
        cached, vocab2 = prepare_graph_data(train[:10], cache=cache)
        assert vocab2 is vocab
        assert cache.misses <= 10 and len(cache) == cache.misses
        for a, b in zip(plain, cached):
            assert a.label == b.label
            assert (a.type_ids == b.type_ids).all()
            assert (a.text_ids == b.text_ids).all()
        # second pass reuses every encoding
        again, _ = prepare_graph_data(train[:10], cache=cache)
        assert cache.hits >= 10

    def test_prepare_graph_cache_vocab_mismatch_raises(self, tiny_dataset):
        from repro.graphs import EncodeCache, GraphVocab

        train, _ = tiny_dataset
        _, vocab = prepare_graph_data(train[:5])
        cache = EncodeCache(vocab, representation="aug")
        with pytest.raises(ValueError):
            prepare_graph_data(train[:5], vocab=GraphVocab(), cache=cache)
        with pytest.raises(ValueError):
            prepare_graph_data(train[:5], representation="vanilla",
                               cache=cache)


class TestGraphTrainer:
    def test_loss_decreases(self, tiny_dataset):
        train, _ = tiny_dataset
        data, vocab = prepare_graph_data(train[:60])
        model = Graph2Par(vocab, Graph2ParConfig(dim=32, heads=4, layers=1))
        trainer = GraphTrainer(model, TrainConfig(epochs=4, batch_size=16))
        history = trainer.fit(data)
        assert history[-1]["loss"] < history[0]["loss"]

    def test_predict_length(self, tiny_dataset):
        train, test = tiny_dataset
        data, vocab = prepare_graph_data(train[:40])
        test_data, _ = prepare_graph_data(test[:11], vocab=vocab)
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2, layers=1))
        trainer = GraphTrainer(model, TrainConfig(epochs=1))
        trainer.fit(data)
        assert len(trainer.predict(test_data)) == 11

    def test_validation_history(self, tiny_dataset):
        train, test = tiny_dataset
        data, vocab = prepare_graph_data(train[:40])
        val, _ = prepare_graph_data(test[:10], vocab=vocab)
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2, layers=1))
        trainer = GraphTrainer(model, TrainConfig(epochs=2))
        history = trainer.fit(data, val_data=val)
        assert "val_accuracy" in history[-1]

    def test_deterministic_given_seed(self, tiny_dataset):
        train, _ = tiny_dataset
        data, vocab = prepare_graph_data(train[:30])

        def train_once():
            model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2,
                                                     layers=1, seed=5,
                                                     dropout=0.0))
            t = GraphTrainer(model, TrainConfig(epochs=2, seed=5))
            t.fit(data)
            return t.predict(data)

        assert np.array_equal(train_once(), train_once())


class TestTokenTrainer:
    def test_loss_decreases(self, tiny_dataset):
        train, _ = tiny_dataset
        ids, mask, labels, vocab = prepare_token_data(train[:60])
        model = PragFormer(vocab, PragFormerConfig(dim=32, heads=4, layers=1))
        trainer = TokenTrainer(model, TrainConfig(epochs=4, batch_size=16))
        history = trainer.fit(ids, mask, labels)
        assert history[-1]["loss"] < history[0]["loss"]

    def test_evaluate_keys(self, tiny_dataset):
        train, test = tiny_dataset
        ids, mask, labels, vocab = prepare_token_data(train[:30])
        t_ids, t_mask, t_labels, _ = prepare_token_data(test[:10], vocab=vocab)
        model = PragFormer(vocab, PragFormerConfig(dim=16, heads=2, layers=1))
        trainer = TokenTrainer(model, TrainConfig(epochs=1))
        trainer.fit(ids, mask, labels)
        metrics = trainer.evaluate(t_ids, t_mask, t_labels)
        assert set(metrics) == {"precision", "recall", "f1", "accuracy"}


class TestFastPathDeterminism:
    """The fused fast path must be a pure speedup: same seed, same
    data => byte-identical training outcome vs the seed composed tape."""

    def _fit(self, tiny_dataset, fast):
        from repro.nn.tensor import use_fast_math

        train, test = tiny_dataset
        with use_fast_math(fast):
            data, vocab = prepare_graph_data(train[:40])
            val, _ = prepare_graph_data(test[:10], vocab=vocab)
            model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2,
                                                     layers=2, seed=11))
            trainer = GraphTrainer(model, TrainConfig(
                epochs=2, batch_size=8, seed=11))
            history = trainer.fit(data, val)
            preds = trainer.predict(val)
        return history, model.state_dict(), preds

    def test_state_dict_history_preds_identical(self, tiny_dataset):
        hist_fast, state_fast, preds_fast = self._fit(tiny_dataset, True)
        hist_seed, state_seed, preds_seed = self._fit(tiny_dataset, False)
        assert hist_fast == hist_seed
        assert set(state_fast) == set(state_seed)
        for key in state_seed:
            assert state_fast[key].tobytes() == state_seed[key].tobytes(), key
        assert np.array_equal(preds_fast, preds_seed)

    def test_same_seed_same_result_within_fast_path(self, tiny_dataset):
        _, state_a, _ = self._fit(tiny_dataset, True)
        _, state_b, _ = self._fit(tiny_dataset, True)
        for key in state_a:
            assert state_a[key].tobytes() == state_b[key].tobytes(), key
