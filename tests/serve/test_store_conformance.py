"""Backend-independent contract of the suggestion store.

Every behavior here — atomic commit, torn entries degrading to
misses, hit/miss counters, LRU gc with its per-layer report, fsck,
describe — must hold identically for the on-disk
:class:`~repro.serve.store.SuggestionStore` and for the network
backend (:class:`~repro.fabric.netstore.NetworkStore` speaking to a
``repro serve`` daemon).  The suite is parametrized over both: a test
added here is automatically a conformance requirement for any future
backend.

Each backend exposes ``open()`` (a fresh store instance over the same
state — counters are per-instance, state is shared) and ``root`` (the
on-disk directory ultimately holding the entries, used to inject
corruption and age; the network backend's daemon serves a store rooted
there, so the same injections work).
"""

import os
import time
from pathlib import Path

import pytest

from repro.fabric import NetworkStore
from repro.serve import SuggestServer, SuggestionStore

PARSE_ENTRY = {"requests": [], "error": None}
VERDICT_ENTRY = {"ok": True, "code": "verified", "detail": "8 runs"}


class _DiskBackend:
    kind = "disk"

    def __init__(self, root: Path) -> None:
        self.root = root

    def open(self) -> SuggestionStore:
        return SuggestionStore(self.root)

    def close(self) -> None:
        pass


class _NetworkBackend:
    kind = "network"

    def __init__(self, root: Path, scratch: Path) -> None:
        self.root = root
        # an empty push-accepting daemon: no services, just the store
        self.server = SuggestServer(
            {}, cache_dir=str(root),
            bundle_cache_dir=scratch / "bundles").start()
        self._stores: list[NetworkStore] = []

    def open(self) -> NetworkStore:
        store = NetworkStore(self.server.address)
        self._stores.append(store)
        return store

    def close(self) -> None:
        for store in self._stores:
            store.close()
        self.server.shutdown()


@pytest.fixture(params=["disk", "network"])
def backend(request, tmp_path):
    root = tmp_path / "store"
    if request.param == "disk":
        back = _DiskBackend(root)
    else:
        back = _NetworkBackend(root, tmp_path)
    yield back
    back.close()


def _files(root: Path) -> list[Path]:
    """Every committed entry file, in sorted order."""
    base = root / "v1"
    return sorted(base.rglob("*.json")) if base.exists() else []


class TestMechanics:
    def test_atomic_write_then_read(self, backend):
        store = backend.open()
        store.put_parse("k", PARSE_ENTRY)
        assert store.get_parse("k") == PARSE_ENTRY
        assert store.stats()["parse_hits"] == 1
        assert store.stats()["write_errors"] == 0

    def test_missing_entry_is_miss(self, backend):
        store = backend.open()
        assert store.get_suggestions("model", "absent") is None
        assert store.stats()["suggest_misses"] == 1

    def test_state_is_shared_counters_are_not(self, backend):
        writer = backend.open()
        writer.put_parse("k", PARSE_ENTRY)
        reader = backend.open()
        assert reader.get_parse("k") == PARSE_ENTRY
        assert reader.stats()["parse_hits"] == 1
        assert writer.stats()["parse_hits"] == 0

    def test_non_dict_payload_is_miss(self, backend):
        store = backend.open()
        store.put_parse("k", PARSE_ENTRY)
        [entry] = _files(backend.root)
        entry.write_text("[1, 2, 3]")
        fresh = backend.open()
        assert fresh.get_parse("k") is None
        assert fresh.stats()["parse_misses"] == 1

    def test_torn_entry_degrades_to_miss(self, backend):
        store = backend.open()
        store.put_parse("k", PARSE_ENTRY)
        [entry] = _files(backend.root)
        entry.write_text(entry.read_text()[:7])
        assert backend.open().get_parse("k") is None

    def test_layers_do_not_alias(self, backend):
        store = backend.open()
        store.put_parse("k", PARSE_ENTRY)
        store.put_verdict("k", VERDICT_ENTRY)
        store.put_suggestions("m", "k", {"suggestions": [],
                                         "error": None})
        assert store.get_parse("k") == PARSE_ENTRY
        assert store.get_verdict("k") == VERDICT_ENTRY
        # ...and model keys partition the suggest layer
        assert store.get_suggestions("other", "k") is None


class TestVerdictLayer:
    def test_round_trip_and_counters(self, backend):
        store = backend.open()
        assert store.get_verdict("absent") is None
        store.put_verdict("k", VERDICT_ENTRY)
        assert store.get_verdict("k") == VERDICT_ENTRY
        stats = store.stats()
        assert stats["verdict_hits"] == 1
        assert stats["verdict_misses"] == 1

    def test_describe_counts_verdicts(self, backend):
        store = backend.open()
        store.put_verdict("k1", VERDICT_ENTRY)
        store.put_verdict("k2", VERDICT_ENTRY)
        d = store.describe()
        assert d["verdict"]["entries"] == 2
        assert d["verdict"]["bytes"] > 0
        assert d["total_bytes"] == d["verdict"]["bytes"]

    def test_gc_reports_verdict_layer(self, backend):
        store = backend.open()
        store.put_parse("p", PARSE_ENTRY)
        store.put_verdict("v", VERDICT_ENTRY)
        result = store.gc(max_bytes=0)
        assert result["layers"]["verdict"]["removed_files"] == 1
        assert result["layers"]["parse"]["removed_files"] == 1
        assert not _files(backend.root)


class TestGC:
    """Eviction: without ``gc`` the cache only grows."""

    def _filled(self, backend, n: int = 6):
        store = backend.open()
        for i in range(n):
            store.put_parse(f"p{i}", {"requests": [], "error": None,
                                      "pad": "x" * 50})
            store.put_suggestions("model", f"s{i}",
                                  {"suggestions": [], "error": None,
                                   "pad": "y" * 50})
        return store

    def test_no_limits_is_a_no_op(self, backend):
        store = self._filled(backend)
        before = len(_files(backend.root))
        result = store.gc()
        assert result["removed_files"] == 0
        assert result["kept_files"] == before == len(_files(backend.root))
        assert result["kept_bytes"] > 0

    def test_max_age_drops_old_entries(self, backend):
        store = self._filled(backend, n=4)
        now = time.time()
        old = now - 10 * 86400
        aged = _files(backend.root)[:3]
        for path in aged:
            os.utime(path, (old, old))
        result = store.gc(max_age_days=7, now=now)
        assert result["removed_files"] == 3
        survivors = set(_files(backend.root))
        assert survivors.isdisjoint(aged)
        assert result["kept_files"] == len(survivors)

    def test_max_bytes_evicts_lru_by_mtime(self, backend):
        store = self._filled(backend, n=5)
        now = time.time()
        paths = _files(backend.root)
        # give every entry a distinct age; paths[0] is the most recent
        for age, path in enumerate(paths):
            os.utime(path, (now - age, now - age))
        budget = sum(p.stat().st_size for p in paths[:3])
        result = store.gc(max_bytes=budget, now=now)
        assert set(_files(backend.root)) == set(paths[:3])
        assert result["kept_files"] == 3
        assert result["removed_files"] == len(paths) - 3
        assert result["kept_bytes"] <= budget

    def test_max_bytes_is_a_recency_cutoff_not_first_fit(self, backend):
        store = backend.open()
        store.put_parse("big", {"requests": [], "error": None,
                                "pad": "x" * 400})
        [big] = _files(backend.root)
        store.put_parse("small", PARSE_ENTRY)
        [small] = [p for p in _files(backend.root) if p != big]
        now = time.time()
        os.utime(big, (now, now))              # newest, too big alone
        os.utime(small, (now - 60, now - 60))  # older, would fit alone
        result = store.gc(max_bytes=big.stat().st_size - 1, now=now)
        # strict LRU: the overflowing newest entry marks the cutoff and
        # the older small entry must NOT survive it
        assert result["kept_files"] == 0
        assert result["removed_files"] == 2
        assert not _files(backend.root)

    def test_never_written_store_gc_is_empty(self, backend):
        result = backend.open().gc(max_bytes=10)
        assert {k: v for k, v in result.items() if k != "layers"} == {
            "removed_files": 0, "removed_bytes": 0,
            "kept_files": 0, "kept_bytes": 0,
        }
        for counters in result["layers"].values():
            assert set(counters.values()) == {0}

    def test_report_breaks_down_per_layer(self, backend):
        store = self._filled(backend, n=3)      # 3 parse + 3 suggest
        result = store.gc(max_bytes=0)
        layers = result["layers"]
        assert layers["parse"]["removed_files"] == 3
        assert layers["suggest"]["removed_files"] == 3
        assert layers["other"]["removed_files"] == 0
        assert result["removed_files"] == 6
        assert result["removed_bytes"] == (
            layers["parse"]["removed_bytes"]
            + layers["suggest"]["removed_bytes"]
        )
        assert layers["parse"]["removed_bytes"] > 0

    def test_age_applies_before_bytes(self, backend):
        """An entry the age limit drops never counts against the byte
        budget — the two limits compose in a fixed order."""
        store = backend.open()
        store.put_parse("old-big", {"requests": [], "error": None,
                                    "pad": "x" * 500})
        [old] = _files(backend.root)
        store.put_parse("fresh", PARSE_ENTRY)
        [fresh] = [p for p in _files(backend.root) if p != old]
        now = time.time()
        os.utime(old, (now - 10 * 86400, now - 10 * 86400))
        os.utime(fresh, (now, now))
        # budget fits "fresh" only because "old-big" ages out first
        budget = fresh.stat().st_size
        result = store.gc(max_bytes=budget, max_age_days=7, now=now)
        assert result["kept_files"] == 1
        assert _files(backend.root) == [fresh]

    def test_mtime_ties_break_deterministically(self, backend):
        """Identical mtimes: eviction order falls back to path, so the
        same cache state always prunes the same entries."""
        store = backend.open()
        for key in ("a", "b", "c", "d"):
            store.put_parse(key, PARSE_ENTRY)
        now = time.time()
        paths = _files(backend.root)
        for path in paths:
            os.utime(path, (now, now))
        budget = sum(p.stat().st_size for p in paths[:2])
        survivors = set()
        for _ in range(3):
            store.gc(max_bytes=budget, now=now)
            survivors.add(frozenset(_files(backend.root)))
        # repeated runs agree (and keep the path-ascending pair)
        assert len(survivors) == 1
        assert next(iter(survivors)) == frozenset(paths[:2])


class TestFsck:
    def test_removes_torn_entries_and_stale_tmp(self, backend):
        store = backend.open()
        store.put_parse("good", PARSE_ENTRY)
        store.put_parse("torn", PARSE_ENTRY)
        good_file = next(p for p in _files(backend.root)
                         if p.read_text().startswith("{"))
        torn = next(p for p in _files(backend.root) if p != good_file)
        torn.write_text(torn.read_text()[:7])
        (torn.parent / "dead-writer.tmp").write_text("{")
        report = store.fsck(remove=False)        # dry run: report only
        assert report["scanned"] == 2
        assert report["corrupt"] == 1
        assert report["removed"] == 0
        assert torn.exists()
        report = store.fsck()
        assert report["corrupt"] == report["removed"] == 1
        assert report["stale_tmp"] == 1
        assert report["layers"]["parse"]["removed"] == 1
        assert not torn.exists()
        assert not list(backend.root.rglob("*.tmp"))
        # the good entry survived and still reads
        assert store.get_parse("good") == PARSE_ENTRY


class TestDescribe:
    def test_counts_layers_on_disk(self, backend):
        store = backend.open()
        assert store.describe()["exists"] is False
        store.put_parse("p1", PARSE_ENTRY)
        store.put_parse("p2", PARSE_ENTRY)
        store.put_suggestions("m1", "p1", {"suggestions": [],
                                           "error": None})
        d = store.describe()
        assert d["exists"] is True
        assert d["parse"]["entries"] == 2
        assert d["suggest"]["entries"] == 1
        assert d["suggest"]["models"] == 1
        assert d["total_bytes"] == d["parse"]["bytes"] + d["suggest"]["bytes"]
        assert d["parse"]["bytes"] > 0

    def test_fresh_store_counters_are_zero(self, backend):
        assert backend.open().stats() == {
            "parse_hits": 0, "parse_misses": 0,
            "suggest_hits": 0, "suggest_misses": 0,
            "verdict_hits": 0, "verdict_misses": 0,
            "write_errors": 0,
        }
