"""Service-level tests of the persistent suggestion store.

The contract: a second ``suggest_dir`` run over an unchanged corpus
performs zero model forwards (everything replays from disk), edited
files are invalidated selectively by content hash, and a different
model fingerprint never sees another model's cached suggestions.

The backend-independent store contract itself (atomicity, counters,
gc, fsck, describe) lives in ``test_store_conformance.py``, where it
runs against both the disk store and the network store; this file
keeps what is disk- or service-specific — warm-run accounting, the
rewrite engine's verdict replay, and fault-injected writes.
"""

import numpy as np
import pytest

from repro.cfront import parse_loop
from repro.graphs import EncodeCache, build_aug_ast, build_graph_vocab
from repro.serve import (
    ServeConfig,
    SuggestionService,
    SuggestionStore,
    content_key,
)

SOURCE_A = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""

SOURCE_B = """
double c[50];
void scale(void) {
    int j;
    for (j = 0; j < 50; j++) c[j] = c[j] * 2.0;
}
"""

SOURCE_B_EDITED = SOURCE_B.replace("* 2.0", "* 3.0")

BAD_SOURCE = "void broken(void) { for (i = 0; i < ; }"


def _vocab():
    graphs = [
        build_aug_ast(parse_loop(src))
        for src in ("for (i = 0; i < n; i++) s += a[i];",
                    "for (i = 0; i < n; i++) a[i] = b[i];")
    ]
    return build_graph_vocab(graphs)


class _FakeTrained:
    """TrainedGraphModel serving protocol with a stable fingerprint."""

    representation = "aug"

    def __init__(self, value: int, vocab, name: str = "fake") -> None:
        self.value = value
        self.vocab = vocab
        self.name = name

    def predict_samples(self, samples, cache=None):
        return np.full(len(samples), self.value, dtype=int)

    def predict_encoded(self, graphs, batch_size=None):
        return np.full(len(graphs), self.value, dtype=int)

    def encode_cache(self, max_entries=4096):
        return EncodeCache(self.vocab, representation=self.representation,
                           max_entries=max_entries)

    def encoder_key(self):
        return (
            self.representation,
            tuple(sorted(self.vocab.types.tokens.items())),
            tuple(sorted(self.vocab.texts.tokens.items())),
        )

    def fingerprint(self):
        return f"{self.name}:{self.value}"


def _service(store, vocab=None, name="fake"):
    vocab = vocab or _vocab()
    parallel = _FakeTrained(1, vocab, name=name)
    clauses = {c: _FakeTrained(0, vocab, name=f"{name}-{c}")
               for c in ("reduction", "private")}
    return SuggestionService(parallel, clauses, ServeConfig(workers=1),
                             store=store)


@pytest.fixture()
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    (directory / "a.c").write_text(SOURCE_A)
    (directory / "b.c").write_text(SOURCE_B)
    (directory / "broken.c").write_text(BAD_SOURCE)
    return directory


class TestWarmCache:
    def test_second_run_does_zero_model_forwards(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold_results = cold.suggest_dir(corpus)
        cold_stats = cold.cache_stats()
        assert cold_stats["forwards"]["graphs"] > 0
        assert cold_stats["store"]["suggest_misses"] == 3
        assert cold_stats["store"]["suggest_hits"] == 0

        # a fresh service + store instance: only the disk is shared
        warm = _service(SuggestionStore(cache))
        warm_results = warm.suggest_dir(corpus)
        warm_stats = warm.cache_stats()
        assert warm_stats["forwards"] == {"calls": 0, "graphs": 0}
        assert warm_stats["store"]["suggest_hits"] == 3
        assert warm_stats["store"]["suggest_misses"] == 0
        # including the parse stage: nothing was re-parsed
        assert warm_stats["store"]["parse_hits"] == 0
        assert warm_stats["store"]["parse_misses"] == 0

        assert [r.name for r in warm_results] == \
            [r.name for r in cold_results]
        assert [[s.render() for s in r.suggestions]
                for r in warm_results] == \
            [[s.render() for s in r.suggestions] for r in cold_results]
        assert [r.error for r in warm_results] == \
            [r.error for r in cold_results]

    def test_edited_file_selectively_invalidated(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold.suggest_dir(corpus)

        (corpus / "b.c").write_text(SOURCE_B_EDITED)
        warm = _service(SuggestionStore(cache))
        results = warm.suggest_dir(corpus)
        stats = warm.cache_stats()
        # a.c and broken.c replay from disk; only b.c recomputes
        assert stats["store"]["suggest_hits"] == 2
        assert stats["store"]["suggest_misses"] == 1
        assert stats["forwards"]["calls"] > 0
        by_name = {r.name.rsplit("/", 1)[-1]: r for r in results}
        assert "* 3.0" in by_name["b.c"].suggestions[0].loop_source

    def test_rename_stays_warm(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold.suggest_dir(corpus)

        (corpus / "b.c").rename(corpus / "renamed.c")
        warm = _service(SuggestionStore(cache))
        results = warm.suggest_dir(corpus)
        stats = warm.cache_stats()
        assert stats["forwards"] == {"calls": 0, "graphs": 0}
        assert any(r.name.endswith("renamed.c") and r.suggestions
                   for r in results)

    def test_different_models_never_share_suggestions(self, tmp_path,
                                                      corpus):
        cache = tmp_path / "cache"
        vocab = _vocab()
        first = _service(SuggestionStore(cache), vocab, name="modelA")
        first.suggest_dir(corpus)

        second = _service(SuggestionStore(cache), vocab, name="modelB")
        second.suggest_dir(corpus)
        stats = second.cache_stats()
        assert stats["store"]["suggest_hits"] == 0
        assert stats["store"]["suggest_misses"] == 3
        # ... but the model-independent parse layer is still reused
        assert stats["store"]["parse_hits"] == 3
        assert stats["store"]["parse_misses"] == 0
        assert stats["forwards"]["graphs"] > 0

    def test_corrupt_entries_degrade_to_misses(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold_results = cold.suggest_dir(corpus)
        for path in (cache / "v1").rglob("*.json"):
            path.write_text("{ torn write")
        warm = _service(SuggestionStore(cache))
        warm_results = warm.suggest_dir(corpus)
        assert [[s.render() for s in r.suggestions]
                for r in warm_results] == \
            [[s.render() for s in r.suggestions] for r in cold_results]

    def test_without_store_no_store_stats(self):
        service = _service(None)
        stats = service.cache_stats()
        assert "store" not in stats
        assert stats["forwards"] == {"calls": 0, "graphs": 0}

    def test_store_requires_model_fingerprints(self, tmp_path):
        class NoFingerprint:
            def predict_samples(self, samples):
                return np.zeros(len(samples), dtype=int)

        # fine without a store...
        SuggestionService(NoFingerprint(), {}, ServeConfig())
        # ...but a persistent cache must refuse to key on class names
        with pytest.raises(ValueError, match="fingerprint"):
            SuggestionService(NoFingerprint(), {}, ServeConfig(),
                              store=SuggestionStore(tmp_path))

    def test_schema_drift_recomputes_instead_of_crashing(self, tmp_path,
                                                         corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold_results = cold.suggest_dir(corpus)
        # valid JSON dicts, but not the payload shape this version writes
        for path in (cache / "v1").rglob("*.json"):
            path.write_text('{"schema": "from-the-future"}')
        warm = _service(SuggestionStore(cache))
        warm_results = warm.suggest_dir(corpus)
        assert [[s.render() for s in r.suggestions]
                for r in warm_results] == \
            [[s.render() for s in r.suggestions] for r in cold_results]


class TestStoreMechanics:
    def test_content_key_is_content_only(self):
        assert content_key(SOURCE_A) == content_key(SOURCE_A)
        assert content_key(SOURCE_A) != content_key(SOURCE_B)


class TestVerdictLayer:
    """The persistent verdict cache: warm rewrites replay, not re-run."""

    def test_engine_replays_cached_verdicts(self, tmp_path):
        from repro.rewrite import rewrite_loop

        store = SuggestionStore(tmp_path)
        src = "for (i = 0; i < n; i++) { a[i] = a[i] + 1; }"
        cold_stats: dict = {}
        cold = rewrite_loop(src, store=store, stats=cold_stats)
        assert cold.code == "verified"
        assert cold_stats["simulations"] > 0
        warm_stats: dict = {}
        warm = rewrite_loop(src, store=store, stats=warm_stats)
        assert warm == cold
        assert warm_stats.get("simulations", 0) == 0
        assert warm_stats["cached_verdicts"] == 1

    def test_config_change_invalidates(self, tmp_path):
        from repro.rewrite import VerifyConfig, rewrite_loop

        store = SuggestionStore(tmp_path)
        src = "for (i = 0; i < n; i++) { a[i] = a[i] + 1; }"
        rewrite_loop(src, store=store)
        stats: dict = {}
        rewrite_loop(src, store=store,
                     config=VerifyConfig(max_trip=8), stats=stats)
        # a different budget is a different verdict key, so no replay
        assert stats.get("cached_verdicts", 0) == 0
        assert stats["simulations"] > 0

    def test_compiled_flag_shares_cache_entries(self, tmp_path):
        from repro.rewrite import VerifyConfig, rewrite_loop

        store = SuggestionStore(tmp_path)
        src = "for (i = 0; i < n; i++) { a[i] = a[i] * 3; }"
        rewrite_loop(src, store=store, config=VerifyConfig(compiled=True))
        stats: dict = {}
        rewrite_loop(src, store=store,
                     config=VerifyConfig(compiled=False), stats=stats)
        # execution strategy is excluded from the fingerprint: both
        # paths produce identical verdicts, so they share one entry
        assert stats["cached_verdicts"] == 1

    def test_torn_entry_degrades_to_recompute(self, tmp_path):
        from repro.rewrite import rewrite_loop

        store = SuggestionStore(tmp_path)
        src = "for (i = 0; i < n; i++) { a[i] = a[i] + 2; }"
        cold = rewrite_loop(src, store=store)
        for path in (store.root / "verdict").glob("*.json"):
            path.write_text('{"ok": "maybe"}')     # malformed shape
        stats: dict = {}
        again = rewrite_loop(src, store=store, stats=stats)
        assert again == cold
        assert stats["simulations"] > 0            # recomputed, not trusted


class TestStoreGC:
    """gc through the serving path; mechanics live in the conformance
    suite."""

    def test_gc_to_zero_then_recompute(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold_results = cold.suggest_dir(corpus)
        result = SuggestionStore(cache).gc(max_bytes=0)
        assert result["kept_files"] == 0
        # an emptied cache degrades to a cold run, never an error
        warm = _service(SuggestionStore(cache))
        warm_results = warm.suggest_dir(corpus)
        assert warm.cache_stats()["store"]["suggest_hits"] == 0
        assert [[s.render() for s in r.suggestions]
                for r in warm_results] == \
            [[s.render() for s in r.suggestions] for r in cold_results]

class TestFsck:
    """Fault-injected writes; fsck mechanics live in the conformance
    suite."""

    def test_injected_torn_write_is_caught_by_fsck(self, tmp_path):
        from repro.serve import Fault, FaultPlan, faults

        store = SuggestionStore(tmp_path)
        faults.activate(FaultPlan((Fault("tear-entry"),)))
        try:
            store.put_parse("victim", {"requests": [], "error": None})
        finally:
            faults.reset()
        # the torn entry degrades to a miss for readers...
        assert store.get_parse("victim") is None
        # ...and fsck removes it so it stops costing a recompute
        report = store.fsck()
        assert report["corrupt"] == 1
        assert not store._parse_path("victim").exists()

    def test_injected_abort_write_degrades_to_counter(self, tmp_path):
        from repro.serve import Fault, FaultPlan, faults

        store = SuggestionStore(tmp_path)
        faults.activate(FaultPlan((Fault("abort-write"),)))
        try:
            store.put_parse("k", {"requests": [], "error": None})
        finally:
            faults.reset()
        # the cache is an accelerator: a failed write is a counter,
        # never an exception on the serving path
        assert store.stats()["write_errors"] == 1
        assert store.get_parse("k") is None
