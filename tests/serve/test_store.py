"""Regression tests for the persistent suggestion store.

The contract: a second ``suggest_dir`` run over an unchanged corpus
performs zero model forwards (everything replays from disk), edited
files are invalidated selectively by content hash, and a different
model fingerprint never sees another model's cached suggestions.
"""

import numpy as np
import pytest

from repro.cfront import parse_loop
from repro.graphs import EncodeCache, build_aug_ast, build_graph_vocab
from repro.serve import (
    ServeConfig,
    SuggestionService,
    SuggestionStore,
    content_key,
)

SOURCE_A = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""

SOURCE_B = """
double c[50];
void scale(void) {
    int j;
    for (j = 0; j < 50; j++) c[j] = c[j] * 2.0;
}
"""

SOURCE_B_EDITED = SOURCE_B.replace("* 2.0", "* 3.0")

BAD_SOURCE = "void broken(void) { for (i = 0; i < ; }"


def _vocab():
    graphs = [
        build_aug_ast(parse_loop(src))
        for src in ("for (i = 0; i < n; i++) s += a[i];",
                    "for (i = 0; i < n; i++) a[i] = b[i];")
    ]
    return build_graph_vocab(graphs)


class _FakeTrained:
    """TrainedGraphModel serving protocol with a stable fingerprint."""

    representation = "aug"

    def __init__(self, value: int, vocab, name: str = "fake") -> None:
        self.value = value
        self.vocab = vocab
        self.name = name

    def predict_samples(self, samples, cache=None):
        return np.full(len(samples), self.value, dtype=int)

    def predict_encoded(self, graphs, batch_size=None):
        return np.full(len(graphs), self.value, dtype=int)

    def encode_cache(self, max_entries=4096):
        return EncodeCache(self.vocab, representation=self.representation,
                           max_entries=max_entries)

    def encoder_key(self):
        return (
            self.representation,
            tuple(sorted(self.vocab.types.tokens.items())),
            tuple(sorted(self.vocab.texts.tokens.items())),
        )

    def fingerprint(self):
        return f"{self.name}:{self.value}"


def _service(store, vocab=None, name="fake"):
    vocab = vocab or _vocab()
    parallel = _FakeTrained(1, vocab, name=name)
    clauses = {c: _FakeTrained(0, vocab, name=f"{name}-{c}")
               for c in ("reduction", "private")}
    return SuggestionService(parallel, clauses, ServeConfig(workers=1),
                             store=store)


@pytest.fixture()
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    (directory / "a.c").write_text(SOURCE_A)
    (directory / "b.c").write_text(SOURCE_B)
    (directory / "broken.c").write_text(BAD_SOURCE)
    return directory


class TestWarmCache:
    def test_second_run_does_zero_model_forwards(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold_results = cold.suggest_dir(corpus)
        cold_stats = cold.cache_stats()
        assert cold_stats["forwards"]["graphs"] > 0
        assert cold_stats["store"]["suggest_misses"] == 3
        assert cold_stats["store"]["suggest_hits"] == 0

        # a fresh service + store instance: only the disk is shared
        warm = _service(SuggestionStore(cache))
        warm_results = warm.suggest_dir(corpus)
        warm_stats = warm.cache_stats()
        assert warm_stats["forwards"] == {"calls": 0, "graphs": 0}
        assert warm_stats["store"]["suggest_hits"] == 3
        assert warm_stats["store"]["suggest_misses"] == 0
        # including the parse stage: nothing was re-parsed
        assert warm_stats["store"]["parse_hits"] == 0
        assert warm_stats["store"]["parse_misses"] == 0

        assert [r.name for r in warm_results] == \
            [r.name for r in cold_results]
        assert [[s.render() for s in r.suggestions]
                for r in warm_results] == \
            [[s.render() for s in r.suggestions] for r in cold_results]
        assert [r.error for r in warm_results] == \
            [r.error for r in cold_results]

    def test_edited_file_selectively_invalidated(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold.suggest_dir(corpus)

        (corpus / "b.c").write_text(SOURCE_B_EDITED)
        warm = _service(SuggestionStore(cache))
        results = warm.suggest_dir(corpus)
        stats = warm.cache_stats()
        # a.c and broken.c replay from disk; only b.c recomputes
        assert stats["store"]["suggest_hits"] == 2
        assert stats["store"]["suggest_misses"] == 1
        assert stats["forwards"]["calls"] > 0
        by_name = {r.name.rsplit("/", 1)[-1]: r for r in results}
        assert "* 3.0" in by_name["b.c"].suggestions[0].loop_source

    def test_rename_stays_warm(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold.suggest_dir(corpus)

        (corpus / "b.c").rename(corpus / "renamed.c")
        warm = _service(SuggestionStore(cache))
        results = warm.suggest_dir(corpus)
        stats = warm.cache_stats()
        assert stats["forwards"] == {"calls": 0, "graphs": 0}
        assert any(r.name.endswith("renamed.c") and r.suggestions
                   for r in results)

    def test_different_models_never_share_suggestions(self, tmp_path,
                                                      corpus):
        cache = tmp_path / "cache"
        vocab = _vocab()
        first = _service(SuggestionStore(cache), vocab, name="modelA")
        first.suggest_dir(corpus)

        second = _service(SuggestionStore(cache), vocab, name="modelB")
        second.suggest_dir(corpus)
        stats = second.cache_stats()
        assert stats["store"]["suggest_hits"] == 0
        assert stats["store"]["suggest_misses"] == 3
        # ... but the model-independent parse layer is still reused
        assert stats["store"]["parse_hits"] == 3
        assert stats["store"]["parse_misses"] == 0
        assert stats["forwards"]["graphs"] > 0

    def test_corrupt_entries_degrade_to_misses(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold_results = cold.suggest_dir(corpus)
        for path in (cache / "v1").rglob("*.json"):
            path.write_text("{ torn write")
        warm = _service(SuggestionStore(cache))
        warm_results = warm.suggest_dir(corpus)
        assert [[s.render() for s in r.suggestions]
                for r in warm_results] == \
            [[s.render() for s in r.suggestions] for r in cold_results]

    def test_without_store_no_store_stats(self):
        service = _service(None)
        stats = service.cache_stats()
        assert "store" not in stats
        assert stats["forwards"] == {"calls": 0, "graphs": 0}

    def test_store_requires_model_fingerprints(self, tmp_path):
        class NoFingerprint:
            def predict_samples(self, samples):
                return np.zeros(len(samples), dtype=int)

        # fine without a store...
        SuggestionService(NoFingerprint(), {}, ServeConfig())
        # ...but a persistent cache must refuse to key on class names
        with pytest.raises(ValueError, match="fingerprint"):
            SuggestionService(NoFingerprint(), {}, ServeConfig(),
                              store=SuggestionStore(tmp_path))

    def test_schema_drift_recomputes_instead_of_crashing(self, tmp_path,
                                                         corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold_results = cold.suggest_dir(corpus)
        # valid JSON dicts, but not the payload shape this version writes
        for path in (cache / "v1").rglob("*.json"):
            path.write_text('{"schema": "from-the-future"}')
        warm = _service(SuggestionStore(cache))
        warm_results = warm.suggest_dir(corpus)
        assert [[s.render() for s in r.suggestions]
                for r in warm_results] == \
            [[s.render() for s in r.suggestions] for r in cold_results]


class TestStoreMechanics:
    def test_content_key_is_content_only(self):
        assert content_key(SOURCE_A) == content_key(SOURCE_A)
        assert content_key(SOURCE_A) != content_key(SOURCE_B)

    def test_atomic_write_then_read(self, tmp_path):
        store = SuggestionStore(tmp_path)
        store.put_parse("k", {"requests": [], "error": None})
        assert store.get_parse("k") == {"requests": [], "error": None}
        assert store.stats()["parse_hits"] == 1

    def test_missing_entry_is_miss(self, tmp_path):
        store = SuggestionStore(tmp_path)
        assert store.get_suggestions("model", "absent") is None
        assert store.stats()["suggest_misses"] == 1

    def test_non_dict_payload_is_miss(self, tmp_path):
        store = SuggestionStore(tmp_path)
        path = store._parse_path("k")
        path.parent.mkdir(parents=True)
        path.write_text("[1, 2, 3]")
        assert store.get_parse("k") is None


class TestVerdictLayer:
    """The persistent verdict cache: warm rewrites replay, not re-run."""

    PAYLOAD = {"ok": True, "code": "verified", "detail": "8 runs"}

    def test_round_trip_and_counters(self, tmp_path):
        store = SuggestionStore(tmp_path)
        assert store.get_verdict("absent") is None
        store.put_verdict("k", self.PAYLOAD)
        assert store.get_verdict("k") == self.PAYLOAD
        stats = store.stats()
        assert stats["verdict_hits"] == 1
        assert stats["verdict_misses"] == 1

    def test_describe_counts_verdicts(self, tmp_path):
        store = SuggestionStore(tmp_path)
        store.put_verdict("k1", self.PAYLOAD)
        store.put_verdict("k2", self.PAYLOAD)
        d = store.describe()
        assert d["verdict"]["entries"] == 2
        assert d["verdict"]["bytes"] > 0
        assert d["total_bytes"] == d["verdict"]["bytes"]

    def test_gc_reports_verdict_layer(self, tmp_path):
        store = SuggestionStore(tmp_path)
        store.put_parse("p", {"requests": [], "error": None})
        store.put_verdict("v", self.PAYLOAD)
        result = store.gc(max_bytes=0)
        assert result["layers"]["verdict"]["removed_files"] == 1
        assert result["layers"]["parse"]["removed_files"] == 1
        assert not list(store.base.rglob("*.json"))

    def test_engine_replays_cached_verdicts(self, tmp_path):
        from repro.rewrite import rewrite_loop

        store = SuggestionStore(tmp_path)
        src = "for (i = 0; i < n; i++) { a[i] = a[i] + 1; }"
        cold_stats: dict = {}
        cold = rewrite_loop(src, store=store, stats=cold_stats)
        assert cold.code == "verified"
        assert cold_stats["simulations"] > 0
        warm_stats: dict = {}
        warm = rewrite_loop(src, store=store, stats=warm_stats)
        assert warm == cold
        assert warm_stats.get("simulations", 0) == 0
        assert warm_stats["cached_verdicts"] == 1

    def test_config_change_invalidates(self, tmp_path):
        from repro.rewrite import VerifyConfig, rewrite_loop

        store = SuggestionStore(tmp_path)
        src = "for (i = 0; i < n; i++) { a[i] = a[i] + 1; }"
        rewrite_loop(src, store=store)
        stats: dict = {}
        rewrite_loop(src, store=store,
                     config=VerifyConfig(max_trip=8), stats=stats)
        # a different budget is a different verdict key, so no replay
        assert stats.get("cached_verdicts", 0) == 0
        assert stats["simulations"] > 0

    def test_compiled_flag_shares_cache_entries(self, tmp_path):
        from repro.rewrite import VerifyConfig, rewrite_loop

        store = SuggestionStore(tmp_path)
        src = "for (i = 0; i < n; i++) { a[i] = a[i] * 3; }"
        rewrite_loop(src, store=store, config=VerifyConfig(compiled=True))
        stats: dict = {}
        rewrite_loop(src, store=store,
                     config=VerifyConfig(compiled=False), stats=stats)
        # execution strategy is excluded from the fingerprint: both
        # paths produce identical verdicts, so they share one entry
        assert stats["cached_verdicts"] == 1

    def test_torn_entry_degrades_to_recompute(self, tmp_path):
        from repro.rewrite import rewrite_loop

        store = SuggestionStore(tmp_path)
        src = "for (i = 0; i < n; i++) { a[i] = a[i] + 2; }"
        cold = rewrite_loop(src, store=store)
        for path in (store.root / "verdict").glob("*.json"):
            path.write_text('{"ok": "maybe"}')     # malformed shape
        stats: dict = {}
        again = rewrite_loop(src, store=store, stats=stats)
        assert again == cold
        assert stats["simulations"] > 0            # recomputed, not trusted


class TestStoreGC:
    """Eviction: without ``gc`` the cache only grows."""

    def _filled(self, root, n: int = 6) -> SuggestionStore:
        store = SuggestionStore(root)
        for i in range(n):
            store.put_parse(f"p{i}", {"requests": [], "error": None,
                                      "pad": "x" * 50})
            store.put_suggestions("model", f"s{i}",
                                  {"suggestions": [], "error": None,
                                   "pad": "y" * 50})
        return store

    @staticmethod
    def _entries(store) -> int:
        return len(list(store.base.rglob("*.json")))

    def test_no_limits_is_a_no_op(self, tmp_path):
        store = self._filled(tmp_path)
        before = self._entries(store)
        result = store.gc()
        assert result["removed_files"] == 0
        assert result["kept_files"] == before == self._entries(store)
        assert result["kept_bytes"] > 0

    def test_max_age_drops_old_entries(self, tmp_path):
        import os
        import time

        store = self._filled(tmp_path, n=4)
        now = time.time()
        old = now - 10 * 86400
        aged = sorted(store.base.rglob("*.json"))[:3]
        for path in aged:
            os.utime(path, (old, old))
        result = store.gc(max_age_days=7, now=now)
        assert result["removed_files"] == 3
        survivors = set(store.base.rglob("*.json"))
        assert survivors.isdisjoint(aged)
        assert result["kept_files"] == len(survivors)

    def test_max_bytes_evicts_lru_by_mtime(self, tmp_path):
        import os
        import time

        store = self._filled(tmp_path, n=5)
        now = time.time()
        paths = sorted(store.base.rglob("*.json"))
        # give every entry a distinct age; paths[0] is the most recent
        for age, path in enumerate(paths):
            os.utime(path, (now - age, now - age))
        budget = sum(p.stat().st_size for p in paths[:3])
        result = store.gc(max_bytes=budget, now=now)
        survivors = set(store.base.rglob("*.json"))
        assert survivors == set(paths[:3])       # newest three fit
        assert result["kept_files"] == 3
        assert result["removed_files"] == len(paths) - 3
        assert result["kept_bytes"] <= budget

    def test_max_bytes_is_a_recency_cutoff_not_first_fit(self, tmp_path):
        import os
        import time

        store = SuggestionStore(tmp_path)
        store.put_parse("big", {"requests": [], "error": None,
                                "pad": "x" * 400})
        store.put_parse("small", {"requests": [], "error": None})
        now = time.time()
        big = store._parse_path("big")
        small = store._parse_path("small")
        os.utime(big, (now, now))              # newest, too big alone
        os.utime(small, (now - 60, now - 60))  # older, would fit alone
        result = store.gc(max_bytes=big.stat().st_size - 1, now=now)
        # strict LRU: the overflowing newest entry marks the cutoff and
        # the older small entry must NOT survive it
        assert result["kept_files"] == 0
        assert result["removed_files"] == 2
        assert not list(store.base.rglob("*.json"))

    def test_gc_to_zero_then_recompute(self, tmp_path, corpus):
        cache = tmp_path / "cache"
        cold = _service(SuggestionStore(cache))
        cold_results = cold.suggest_dir(corpus)
        result = SuggestionStore(cache).gc(max_bytes=0)
        assert result["kept_files"] == 0
        # an emptied cache degrades to a cold run, never an error
        warm = _service(SuggestionStore(cache))
        warm_results = warm.suggest_dir(corpus)
        assert warm.cache_stats()["store"]["suggest_hits"] == 0
        assert [[s.render() for s in r.suggestions]
                for r in warm_results] == \
            [[s.render() for s in r.suggestions] for r in cold_results]

    def test_missing_root_is_empty(self, tmp_path):
        result = SuggestionStore(tmp_path / "never-written").gc(
            max_bytes=10,
        )
        assert {k: v for k, v in result.items() if k != "layers"} == {
            "removed_files": 0, "removed_bytes": 0,
            "kept_files": 0, "kept_bytes": 0,
        }
        for counters in result["layers"].values():
            assert set(counters.values()) == {0}

    def test_report_breaks_down_per_layer(self, tmp_path):
        """The gc report accounts for every file, split by layer."""
        store = self._filled(tmp_path, n=3)     # 3 parse + 3 suggest
        result = store.gc(max_bytes=0)
        layers = result["layers"]
        assert layers["parse"]["removed_files"] == 3
        assert layers["suggest"]["removed_files"] == 3
        assert layers["other"]["removed_files"] == 0
        assert result["removed_files"] == 6
        assert result["removed_bytes"] == (
            layers["parse"]["removed_bytes"]
            + layers["suggest"]["removed_bytes"]
        )
        assert layers["parse"]["removed_bytes"] > 0

    def test_age_applies_before_bytes(self, tmp_path):
        """An entry the age limit drops never counts against the byte
        budget — the two limits compose in a fixed order."""
        import os
        import time

        store = SuggestionStore(tmp_path)
        store.put_parse("old-big", {"requests": [], "error": None,
                                    "pad": "x" * 500})
        store.put_parse("fresh", {"requests": [], "error": None})
        now = time.time()
        old = store._parse_path("old-big")
        fresh = store._parse_path("fresh")
        os.utime(old, (now - 10 * 86400, now - 10 * 86400))
        os.utime(fresh, (now, now))
        # budget fits "fresh" only because "old-big" ages out first
        budget = fresh.stat().st_size
        result = store.gc(max_bytes=budget, max_age_days=7, now=now)
        assert result["kept_files"] == 1
        assert list(store.base.rglob("*.json")) == [fresh]

    def test_mtime_ties_break_deterministically(self, tmp_path):
        """Identical mtimes: eviction order falls back to path, so the
        same cache state always prunes the same entries."""
        import os
        import time

        store = SuggestionStore(tmp_path)
        for key in ("a", "b", "c", "d"):
            store.put_parse(key, {"requests": [], "error": None})
        now = time.time()
        paths = sorted(store.base.rglob("*.json"))
        for path in paths:
            os.utime(path, (now, now))
        budget = sum(p.stat().st_size for p in paths[:2])
        survivors = set()
        for _ in range(3):
            store.gc(max_bytes=budget, now=now)
            current = frozenset(store.base.rglob("*.json"))
            survivors.add(current)
        # repeated runs agree (and keep the path-ascending pair)
        assert len(survivors) == 1
        assert next(iter(survivors)) == frozenset(paths[:2])


class TestFsck:
    """``repro cache fsck``: torn entries found, reported, reclaimed."""

    def test_removes_torn_entries_and_stale_tmp(self, tmp_path):
        store = SuggestionStore(tmp_path)
        store.put_parse("good", {"requests": [], "error": None})
        store.put_parse("torn", {"requests": [], "error": None})
        torn = store._parse_path("torn")
        torn.write_text(torn.read_text()[:7])
        (torn.parent / "dead-writer.tmp").write_text("{")
        report = store.fsck(remove=False)        # dry run: report only
        assert report["scanned"] == 2
        assert report["corrupt"] == 1
        assert report["removed"] == 0
        assert torn.exists()
        report = store.fsck()
        assert report["corrupt"] == report["removed"] == 1
        assert report["stale_tmp"] == 1
        assert report["layers"]["parse"]["removed"] == 1
        assert not torn.exists()
        assert not list(store.base.rglob("*.tmp"))
        # the good entry survived and still reads
        assert store.get_parse("good") == {"requests": [], "error": None}

    def test_injected_torn_write_is_caught_by_fsck(self, tmp_path):
        from repro.serve import Fault, FaultPlan, faults

        store = SuggestionStore(tmp_path)
        faults.activate(FaultPlan((Fault("tear-entry"),)))
        try:
            store.put_parse("victim", {"requests": [], "error": None})
        finally:
            faults.reset()
        # the torn entry degrades to a miss for readers...
        assert store.get_parse("victim") is None
        # ...and fsck removes it so it stops costing a recompute
        report = store.fsck()
        assert report["corrupt"] == 1
        assert not store._parse_path("victim").exists()

    def test_injected_abort_write_degrades_to_counter(self, tmp_path):
        from repro.serve import Fault, FaultPlan, faults

        store = SuggestionStore(tmp_path)
        faults.activate(FaultPlan((Fault("abort-write"),)))
        try:
            store.put_parse("k", {"requests": [], "error": None})
        finally:
            faults.reset()
        # the cache is an accelerator: a failed write is a counter,
        # never an exception on the serving path
        assert store.stats()["write_errors"] == 1
        assert store.get_parse("k") is None


class TestDescribe:
    def test_counts_layers_on_disk(self, tmp_path):
        store = SuggestionStore(tmp_path / "cache")
        assert store.describe()["exists"] is False
        store.put_parse("p1", {"requests": [], "error": None})
        store.put_parse("p2", {"requests": [], "error": None})
        store.put_suggestions("m1", "p1", {"suggestions": [], "error": None})
        d = store.describe()
        assert d["exists"] is True
        assert d["parse"]["entries"] == 2
        assert d["suggest"]["entries"] == 1
        assert d["suggest"]["models"] == 1
        assert d["total_bytes"] == d["parse"]["bytes"] + d["suggest"]["bytes"]
        assert d["parse"]["bytes"] > 0

    def test_fresh_store_counters_are_zero(self, tmp_path):
        store = SuggestionStore(tmp_path / "cache")
        assert store.stats() == {"parse_hits": 0, "parse_misses": 0,
                                 "suggest_hits": 0, "suggest_misses": 0,
                                 "verdict_hits": 0, "verdict_misses": 0,
                                 "write_errors": 0}
