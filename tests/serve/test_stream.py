"""Tests for end-to-end sharded, streaming serving.

The contract of the new serving spine: any shard count and either
ordering produce byte-identical suggestions to the single-process
batch path; results stream as files complete; shard workers share the
persistent store; and a worker death is *survived* — the supervisor
respawns, retries in careful mode, and quarantines reproducibly
lethal inputs as per-file error records — while a worker *exception*
still surfaces as a clean :class:`ServeError` with its traceback.
"""

import os
import time

import numpy as np
import pytest

from repro.serve import (
    FileSuggestions,
    ServeConfig,
    ServeError,
    SuggestionService,
    SuggestionStore,
    WorkerSpec,
    merge_results,
)

GOOD_SOURCE = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""

OTHER_SOURCE = """
double c[50];
void scale(void) {
    int j;
    for (j = 0; j < 50; j++) c[j] = c[j] * 2.0;
}
"""

BAD_SOURCE = "void broken(void) { for (i = 0; i < ; }"


class _StubModel:
    """Picklable predict_samples stub (workers rebuild the service
    from it, so it must cross the process boundary)."""

    def __init__(self, value: int, name: str = "stub") -> None:
        self.value = value
        self.name = name

    def predict_samples(self, samples):
        return np.full(len(samples), self.value, dtype=int)

    def fingerprint(self) -> str:
        return f"stub:{self.name}:{self.value}"


class _CrashingModel(_StubModel):
    """Kills its process mid-forward: the hard-death case (segfault,
    OOM-kill) that must not hang the stream."""

    def predict_samples(self, samples):
        os._exit(3)


class _RaisingModel(_StubModel):
    """Raises mid-forward: the soft-failure case whose traceback must
    travel back to the consumer."""

    def predict_samples(self, samples):
        raise RuntimeError("clause model exploded")


def _service(parallel=None, store=None, **config):
    parallel = parallel or _StubModel(1, "par")
    clauses = {"reduction": _StubModel(1, "red"),
               "private": _StubModel(0, "priv")}
    return SuggestionService(parallel, clauses, ServeConfig(**config),
                             store=store)


def _corpus(n: int = 6):
    sources = [GOOD_SOURCE, OTHER_SOURCE, BAD_SOURCE]
    return [(f"f{i}.c", sources[i % len(sources)].replace("100", str(100 + i)))
            for i in range(n)]


def _renders(results):
    return [(r.name, r.error, [s.render() for s in r.suggestions])
            for r in results]


class TestStreamingEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_ordered_matches_batch(self, shards):
        named = _corpus(7)
        batch = _service().suggest_sources(named)
        streamed = list(_service().stream_sources(named, ordered=True,
                                                  shards=shards))
        assert _renders(streamed) == _renders(batch)

    @pytest.mark.parametrize("shards", [1, 3])
    def test_as_completed_is_a_permutation_of_ordered(self, shards):
        named = _corpus(6)
        ordered = list(_service().stream_sources(named, ordered=True,
                                                 shards=shards))
        completed = list(_service().stream_sources(named, ordered=False,
                                                   shards=shards))
        assert sorted(_renders(completed)) == sorted(_renders(ordered))
        assert [r.name for r in ordered] == [name for name, _ in named]

    def test_suggest_dir_is_collected_stream(self, tmp_path):
        for name, source in _corpus(4):
            (tmp_path / name).write_text(source)
        service = _service(shards=2)
        collected = service.suggest_dir(tmp_path)
        streamed = list(_service(shards=2).stream_dir(tmp_path))
        assert _renders(streamed) == _renders(collected)

    def test_config_shards_used_by_default(self):
        named = _corpus(4)
        batch = _service().suggest_sources(named)
        via_config = _service(shards=2).suggest_sources(named)
        assert _renders(via_config) == _renders(batch)

    def test_shards_compose_with_parse_workers(self):
        # daemonic shard workers cannot host a nested parse pool; the
        # spec must strip config.workers instead of crashing the shard
        named = _corpus(6)
        batch = _service().suggest_sources(named)
        combined = list(_service(workers=2).stream_sources(
            named, ordered=True, shards=2,
        ))
        assert _renders(combined) == _renders(batch)


class TestSharedStore:
    def test_shard_workers_commit_to_shared_store(self, tmp_path):
        named = _corpus(6)
        cold = _service(store=SuggestionStore(tmp_path / "cache"))
        cold_results = list(cold.stream_sources(named, shards=3))
        stats = cold.cache_stats()
        # parent absorbed the workers' counters
        assert stats["store"]["suggest_misses"] == len(named)
        assert stats["forwards"]["graphs"] > 0

        warm = _service(store=SuggestionStore(tmp_path / "cache"))
        warm_results = list(warm.stream_sources(named, shards=3))
        warm_stats = warm.cache_stats()
        assert warm_stats["forwards"] == {"calls": 0, "graphs": 0}
        assert warm_stats["store"]["suggest_hits"] == len(named)
        assert _renders(warm_results) == _renders(cold_results)

    def test_single_shard_warm_after_sharded_cold(self, tmp_path):
        named = _corpus(5)
        cold = _service(store=SuggestionStore(tmp_path / "cache"))
        cold_results = list(cold.stream_sources(named, shards=2))
        warm = _service(store=SuggestionStore(tmp_path / "cache"))
        warm_results = warm.suggest_sources(named)
        assert warm.cache_stats()["forwards"] == {"calls": 0, "graphs": 0}
        assert _renders(warm_results) == _renders(cold_results)


class TestWorkerFailure:
    def test_crashed_workers_quarantine_instead_of_aborting(self):
        # a model that kills every process it runs in is the worst
        # case: every retry dies too.  The supervisor must converge —
        # blame the inputs, quarantine them as per-file error records,
        # and complete the run with every file accounted for.
        named = _corpus(6)
        service = _service(parallel=_CrashingModel(1, "crash"),
                           retry_backoff_s=0.01)
        start = time.monotonic()
        results = list(service.stream_sources(named, shards=2,
                                              ordered=True))
        # bounded: retries are capped, not a queue.get() that never
        # returns nor an unbounded respawn loop
        assert time.monotonic() - start < 60
        assert [r.name for r in results] == [name for name, _ in named]
        assert all(r.error is not None for r in results)
        structured = [r for r in results
                      if r.error.startswith(("quarantined:",
                                             "worker-retry:"))]
        # files with loops to forward crash their workers and end
        # quarantined (or retry-exhausted); pure parse errors may
        # surface as-is from a careful worker that never forwards
        assert structured

    def test_retry_budget_zero_fails_fast_with_error_records(self):
        named = _corpus(4)
        service = _service(parallel=_CrashingModel(1, "crash"),
                           max_retries=0, retry_backoff_s=0.0)
        results = list(service.stream_sources(named, shards=2))
        assert len(results) == len(named)
        assert all(r.error is not None
                   and r.error.startswith("worker-retry:")
                   for r in results)

    def test_worker_exception_travels_back(self):
        named = _corpus(4)
        service = _service(parallel=_RaisingModel(1, "boom"))
        with pytest.raises(ServeError, match="clause model exploded"):
            list(service.stream_sources(named, shards=2))

    def test_spec_without_source_is_an_error(self):
        with pytest.raises(ValueError, match="neither"):
            WorkerSpec(config=ServeConfig()).build_service()


class TestMergeResults:
    def _tagged(self, order):
        return [(i, FileSuggestions(name=f"f{i}.c")) for i in order]

    def test_ordered_buffers_out_of_order_arrivals(self):
        merged = list(merge_results(iter(self._tagged([2, 0, 3, 1])),
                                    ordered=True))
        assert [fs.name for fs in merged] == \
            ["f0.c", "f1.c", "f2.c", "f3.c"]

    def test_as_completed_passes_through(self):
        merged = list(merge_results(iter(self._tagged([2, 0, 1])),
                                    ordered=False))
        assert [fs.name for fs in merged] == ["f2.c", "f0.c", "f1.c"]

    def test_ordered_flushes_trailing_gap(self):
        # index 0 never arrives (upstream bug): remaining results still
        # come out, in index order
        merged = list(merge_results(iter(self._tagged([2, 1])),
                                    ordered=True))
        assert [fs.name for fs in merged] == ["f1.c", "f2.c"]
