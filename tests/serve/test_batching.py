"""Tests for cross-client micro-batching and admission control.

The async server coalesces concurrent requests from different clients
into one block-diagonal forward; these tests pin down the admission
edges: a full queue answers ``busy``, a lone client never waits out
the batch window (flush-on-idle), a slow client can't hold up a
coalesced round for others, and one bulk request can't starve
interactive ones (round-robin fairness quantum).
"""

import threading
import time

import numpy as np
import pytest

from repro.client import ClientError, connect
from repro.serve import SuggestionService, SuggestServer, protocol
from repro.serve.pipeline import FileSuggestions

GOOD_SOURCE = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""

OTHER_SOURCE = """
double c[50];
void scale(void) {
    int j;
    for (j = 0; j < 50; j++) c[j] = c[j] * 2.0;
}
"""


def _variant(i: int) -> str:
    """A distinct source per index (defeats content-level dedup)."""
    return GOOD_SOURCE + f"/* variant {i} */\n"


class _StubModel:
    """Picklable fingerprinted stub following the suggester contract."""

    def __init__(self, value: int, name: str = "stub") -> None:
        self.value = value
        self.name = name

    def predict_samples(self, samples):
        return np.full(len(samples), self.value, dtype=int)

    def fingerprint(self) -> str:
        return f"stub:{self.name}:{self.value}"


class _GatedModel(_StubModel):
    """Stub whose first forward blocks until the test opens the gate.

    Lets a test hold one compute round in flight deterministically:
    ``started`` is set when the round reaches the model, ``gate``
    releases it.  Later forwards pass straight through.
    """

    def __init__(self) -> None:
        super().__init__(1, "gated")
        self.started = threading.Event()
        self.gate = threading.Event()
        self._first = True

    def predict_samples(self, samples):
        if self._first:
            self._first = False
            self.started.set()
            assert self.gate.wait(timeout=30), "test never opened the gate"
        return super().predict_samples(samples)


def _service(model=None, store=None) -> SuggestionService:
    return SuggestionService(
        model if model is not None else _StubModel(1),
        {"reduction": _StubModel(0, "red")},
        store=store,
    )


class TestIterJoint:
    """The pipeline-level coalescing primitive, no sockets involved."""

    def test_matches_per_workload_results(self):
        workloads = [
            ("req-a", [("a.c", GOOD_SOURCE), ("b.c", OTHER_SOURCE)]),
            ("req-b", [("c.c", OTHER_SOURCE), ("d.c", _variant(1))]),
        ]
        joint: dict = {}
        for tag, i, fs in _service().iter_joint(workloads):
            joint.setdefault(tag, {})[i] = fs.to_payload()
        for tag, named in workloads:
            solo = _service()      # fresh service: no shared warmth
            expected = {i: fs.to_payload()
                        for i, fs in solo.iter_sources(named)}
            assert joint[tag] == expected

    def test_shared_content_forwards_once(self):
        service = _service()
        workloads = [
            ("req-a", [("a.c", GOOD_SOURCE)]),
            ("req-b", [("the-same-file.c", GOOD_SOURCE)]),
        ]
        results = {tag: fs for tag, _, fs in service.iter_joint(workloads)}
        stats = service.cache_stats()
        # one distinct source: one forward per model, not per client
        assert stats["forwards"]["calls"] == 2      # 2 models, once each
        assert stats["coalesce"] == {
            "rounds": 1, "requests": 2, "deduped_files": 1}
        # each subscriber sees its own name on identical suggestions
        assert results["req-a"].name == "a.c"
        assert results["req-b"].name == "the-same-file.c"
        assert (results["req-a"].suggestions
                == results["req-b"].suggestions)

    def test_single_workload_matches_iter_sources(self):
        named = [("a.c", GOOD_SOURCE), ("b.c", OTHER_SOURCE)]
        joint = {i: fs.to_payload() for _, i, fs
                 in _service().iter_joint([("only", named)])}
        solo = {i: fs.to_payload()
                for i, fs in _service().iter_sources(named)}
        assert joint == solo

    def test_renamed_result_preserves_error_field(self):
        bad = "void broken(void) { for (i = 0; i < ; }"
        service = _service()
        out = {tag: fs for tag, _, fs in service.iter_joint([
            ("req-a", [("x.c", bad)]),
            ("req-b", [("y.c", bad)]),
        ])}
        assert isinstance(out["req-b"], FileSuggestions)
        assert out["req-a"].error == out["req-b"].error
        assert out["req-a"].error is not None


class TestAdmissionControl:
    def test_queue_full_answers_busy(self):
        """queue_depth=1 + one round held in compute: the first extra
        request queues, the next is refused with ``busy`` — and the
        refused client can retry on the same connection."""
        model = _GatedModel()
        srv = SuggestServer({"default": _service(model)},
                            queue_depth=1, batch_window_ms=0.0).start()
        results: dict = {}
        try:
            with srv, connect(srv.address) as blocked, \
                    connect(srv.address) as queued, \
                    connect(srv.address) as refused:
                def run(name, client, source):
                    results[name] = client.suggest_sources(
                        [(name + ".c", source)])

                t_blocked = threading.Thread(
                    target=run, args=("blocked", blocked, GOOD_SOURCE))
                t_blocked.start()
                assert model.started.wait(timeout=30)
                # compute is now held; this one occupies the queue
                t_queued = threading.Thread(
                    target=run, args=("queued", queued, _variant(1)))
                t_queued.start()
                # wait until the queued request actually occupies the
                # admission queue, then the next arrival must bounce
                deadline = time.monotonic() + 30
                lane = srv._lanes["default"]
                while (not lane.queue
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                assert lane.queue, "queued request never admitted"
                with pytest.raises(ClientError) as excinfo:
                    run("refused", refused, _variant(2))
                assert excinfo.value.code == "busy"
                model.gate.set()
                t_blocked.join(timeout=30)
                t_queued.join(timeout=30)
                # same connection, after backoff: served normally
                run("retried", refused, _variant(2))
        finally:
            model.gate.set()
        assert results["blocked"][0].error is None
        assert results["queued"][0].error is None
        assert results["retried"][0].error is None

    def test_single_client_flushes_immediately(self):
        """Flush-on-idle: with one connected client a huge batch
        window is skipped entirely — single-client latency must not
        regress behind coalescing."""
        srv = SuggestServer({"default": _service()},
                            batch_window_ms=30_000.0).start()
        with srv, connect(srv.address) as client:
            t0 = time.monotonic()
            out = client.suggest_sources([("a.c", GOOD_SOURCE)])
            elapsed = time.monotonic() - t0
        assert out[0].error is None
        assert elapsed < 5.0        # nowhere near the 30s window

    def test_window_coalesces_concurrent_clients(self):
        """Two clients firing inside the batch window share one
        compute round (one coalesced pipeline pass)."""
        service = _service()
        srv = SuggestServer({"default": service},
                            batch_window_ms=500.0).start()
        with srv, connect(srv.address) as one, \
                connect(srv.address) as two:
            results: dict = {}

            def run(name, client, source):
                results[name] = client.suggest_sources(
                    [(name + ".c", source)])

            threads = [
                threading.Thread(target=run,
                                 args=("one", one, GOOD_SOURCE)),
                threading.Thread(target=run,
                                 args=("two", two, OTHER_SOURCE)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            stats = service.cache_stats()
        assert results["one"][0].error is None
        assert results["two"][0].error is None
        assert stats["coalesce"]["rounds"] == 1
        assert stats["coalesce"]["requests"] == 2

    def test_slow_client_does_not_block_the_round(self):
        """A client that joins a coalesced round and then never reads
        its replies delays only itself: replies are queued per
        connection, so the other participants finish promptly."""
        srv = SuggestServer({"default": _service()},
                            batch_window_ms=200.0).start()
        with srv, connect(srv.address) as slow, \
                connect(srv.address) as fast:
            # the slow client fires a streaming request and walks away
            # from the socket — no reads while others work
            slow._request(protocol.SuggestRequest(
                sources=tuple((f"s{i}.c", _variant(10 + i))
                              for i in range(3))))
            t0 = time.monotonic()
            for i in range(5):
                out = fast.suggest_sources([(f"f{i}.c", _variant(i))])
                assert out[0].error is None
            assert time.monotonic() - t0 < 10.0
            # the abandoned reply is still queued, intact: the next
            # request on the slow connection drains it and works
            out = slow.suggest_sources([("later.c", OTHER_SOURCE)])
            assert [fs.name for fs in out] == ["later.c"]
            assert out[0].error is None

    def test_bulk_client_does_not_starve_interactive(self):
        """Round-robin fairness: an interactive one-file request
        admitted while a 40-file bulk request is mid-flight joins the
        very next round and finishes long before the bulk does."""
        model = _GatedModel()
        srv = SuggestServer({"default": _service(model)},
                            batch_window_ms=0.0, round_files=4).start()
        done_at: dict = {}
        try:
            with srv, connect(srv.address) as bulk_client, \
                    connect(srv.address) as interactive:
                bulk = [(f"bulk{i}.c", _variant(i)) for i in range(40)]

                def run_bulk():
                    out = bulk_client.suggest_sources(bulk)
                    done_at["bulk"] = time.monotonic()
                    done_at["bulk_ok"] = all(fs.error is None
                                             for fs in out)

                t = threading.Thread(target=run_bulk)
                t.start()
                # first round (4 bulk files) is now held at the gate;
                # the interactive request queues behind it
                assert model.started.wait(timeout=30)

                def run_interactive():
                    out = interactive.suggest_sources(
                        [("tiny.c", GOOD_SOURCE)])
                    done_at["interactive"] = time.monotonic()
                    done_at["interactive_ok"] = out[0].error is None

                t2 = threading.Thread(target=run_interactive)
                t2.start()
                time.sleep(0.1)     # let the request reach the lane
                model.gate.set()
                t2.join(timeout=30)
                t.join(timeout=30)
        finally:
            model.gate.set()
        assert done_at["bulk_ok"] and done_at["interactive_ok"]
        assert done_at["interactive"] < done_at["bulk"]

    def test_ordered_stream_across_chunked_rounds(self):
        """round_files smaller than the request: results span several
        compute rounds but still stream back in input order."""
        srv = SuggestServer({"default": _service()},
                            batch_window_ms=0.0, round_files=2).start()
        named = [(f"f{i}.c", _variant(i)) for i in range(7)]
        with srv, connect(srv.address) as client:
            out = list(client.stream_sources(named))
        assert [fs.name for fs in out] == [name for name, _ in named]
        assert all(fs.error is None for fs in out)

    def test_coalesced_results_byte_identical_to_solo(self):
        """Four clients coalescing through one window receive exactly
        what a fresh in-process pipeline computes for their request."""
        service = _service()
        srv = SuggestServer({"default": service},
                            batch_window_ms=300.0).start()
        workloads = {
            f"client{c}": [(f"c{c}f{i}.c", _variant((c * 3 + i) % 5))
                           for i in range(3)]
            for c in range(4)
        }
        results: dict = {}
        with srv:
            def run(name):
                with connect(srv.address) as client:
                    results[name] = [
                        fs.to_payload() for fs in
                        client.suggest_sources(workloads[name])]

            threads = [threading.Thread(target=run, args=(name,))
                       for name in workloads]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        for name, named in workloads.items():
            golden = _service()     # cold: no store, no coalescing
            expected = [fs.to_payload() for _, fs
                        in sorted(golden.iter_sources(named))]
            got = results[name]
            assert got == expected, f"{name} diverged from solo run"
