"""Chaos suite: deterministic fault injection against the full stack.

Every scenario arms a seeded :class:`FaultPlan` through the
environment (so forked shard workers inherit it), injects a specific
failure — a SIGKILLed worker, a hung worker, a reproducibly lethal
input, a daemon killed mid-batch, an admission-queue storm — and
asserts the stack *recovers*: results stay byte-identical to the
fault-free run, lethal inputs end as quarantine records instead of
aborted runs, and clients complete their batches exactly once.
"""

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.client import ClientError, RetryPolicy, connect
from repro.serve import (
    Fault,
    FaultPlan,
    ServeConfig,
    SuggestionService,
    faults,
)

GOOD_SOURCE = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""

OTHER_SOURCE = """
double c[50];
void scale(void) {
    int j;
    for (j = 0; j < 50; j++) c[j] = c[j] * 2.0;
}
"""


class _StubModel:
    """Picklable fingerprinted stub (crosses the worker fork)."""

    def __init__(self, value: int, name: str = "stub") -> None:
        self.value = value
        self.name = name

    def predict_samples(self, samples):
        return np.full(len(samples), self.value, dtype=int)

    def fingerprint(self) -> str:
        return f"stub:{self.name}:{self.value}"


def _service(**config) -> SuggestionService:
    return SuggestionService(
        _StubModel(1, "par"),
        {"reduction": _StubModel(1, "red"),
         "private": _StubModel(0, "priv")},
        ServeConfig(**config),
    )


def _corpus(n: int = 6, poison: str | None = None):
    named = [(f"f{i}.c",
              (GOOD_SOURCE if i % 2 else OTHER_SOURCE)
              .replace("100", str(100 + i)).replace("50", str(50 + i)))
             for i in range(n)]
    if poison:
        named.insert(n // 2, (poison, GOOD_SOURCE))
    return named


def _renders(results):
    return [(r.name, r.error, [s.render() for s in r.suggestions])
            for r in results]


@pytest.fixture
def arm(monkeypatch):
    """Arm a plan via the environment so worker processes inherit it
    regardless of the multiprocessing start method."""

    def _arm(*plan_faults, seed=0):
        plan = FaultPlan(tuple(plan_faults), seed=seed)
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        faults.reset()

    yield _arm
    faults.reset()          # monkeypatch restores the env var


class TestWorkerChaos:
    def test_sigkilled_worker_run_is_byte_identical(self, arm):
        named = _corpus(6)
        clean = _renders(_service().suggest_sources(named))
        # shard 0's worker dies the hard way after its first result
        arm(Fault("kill-worker", sid=0, after_files=1))
        survived = list(_service(
            heartbeat_s=5.0, retry_backoff_s=0.01,
        ).stream_sources(named, shards=2, ordered=True))
        assert _renders(survived) == clean

    def test_hung_worker_is_detected_by_heartbeat_timeout(self, arm):
        named = _corpus(6)
        clean = _renders(_service().suggest_sources(named))
        # the worker stops heartbeating and sleeps: only the
        # supervisor's heartbeat timeout can notice this one
        arm(Fault("hang-worker", sid=0, after_files=1))
        start = time.monotonic()
        survived = list(_service(
            heartbeat_s=1.0, retry_backoff_s=0.01,
        ).stream_sources(named, shards=2, ordered=True))
        elapsed = time.monotonic() - start
        assert _renders(survived) == clean
        # detected by silence, not by waiting out the hang
        assert elapsed < faults.HANG_S / 10

    def test_poison_file_is_quarantined_after_two_deaths(self, arm):
        named = _corpus(6, poison="poison.c")
        clean = {name: render for name, _, render in
                 _renders(_service().suggest_sources(
                     [nv for nv in named if nv[0] != "poison.c"]))}
        # every worker that touches poison.c dies — batch first, then
        # its careful retry; two deaths pin the blame
        arm(Fault("poison-file", match="poison", times=8))
        results = list(_service(
            heartbeat_s=5.0, retry_backoff_s=0.01,
        ).stream_sources(named, shards=2, ordered=True))
        by_name = {r.name: r for r in results}
        assert len(results) == len(named)
        assert by_name["poison.c"].error is not None
        assert by_name["poison.c"].error.startswith("quarantined:")
        # every innocent file still gets its fault-free suggestions
        for name, render in clean.items():
            assert by_name[name].error is None
            assert [s.render() for s in by_name[name].suggestions] \
                == render

    def test_rewrites_survive_a_worker_kill_byte_identically(self, arm):
        named = _corpus(4)
        clean = [(r.name, r.error, r.rewritten_source)
                 for r in _service().rewrite_sources(named)]
        arm(Fault("kill-worker", sid=0, after_files=1))
        survived = list(_service(
            heartbeat_s=5.0, retry_backoff_s=0.01,
        ).stream_rewrite_sources(named, shards=2, ordered=True))
        assert [(r.name, r.error, r.rewritten_source)
                for r in survived] == clean


_DAEMON_SCRIPT = textwrap.dedent("""
    import sys, time
    import numpy as np
    from repro.serve import SuggestServer, SuggestionService

    class Stub:
        def __init__(self, value, name, delay=0.0):
            self.value, self.name, self.delay = value, name, delay
        def predict_samples(self, samples):
            if self.delay:
                time.sleep(self.delay)
            return np.full(len(samples), self.value, dtype=int)
        def fingerprint(self):
            return f"stub:{self.name}:{self.value}"

    sock, ready, delay = sys.argv[1], sys.argv[2], float(sys.argv[3])
    service = SuggestionService(
        Stub(1, "par", delay),
        {"reduction": Stub(1, "red"), "private": Stub(0, "priv")})
    # round_files=1: each file computes in its own round, so replies
    # stream incrementally and a kill lands mid-batch
    srv = SuggestServer({"default": service}, unix_path=sock,
                        round_files=1).start()
    with open(ready, "w") as fh:
        fh.write(srv.address)
    while True:
        time.sleep(1)
""")


def _spawn_daemon(tmp_path: Path, sock: Path, delay_s: float,
                  timeout_s: float = 60.0) -> subprocess.Popen:
    script = tmp_path / "daemon.py"
    script.write_text(_DAEMON_SCRIPT)
    ready = tmp_path / f"ready-{os.urandom(4).hex()}"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, str(script), str(sock), str(ready),
         str(delay_s)], env=env)
    deadline = time.monotonic() + timeout_s
    while not ready.exists() or not ready.read_text():
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon died during startup (rc={proc.returncode})")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("daemon did not become ready")
        time.sleep(0.05)
    return proc


class TestDaemonChaos:
    def test_daemon_sigkilled_mid_batch_client_completes(self, tmp_path):
        """A rolling restart from the client's chair: the daemon is
        SIGKILLed mid-stream, a replacement binds the same socket, and
        the retrying client finishes the batch exactly once."""
        sock = tmp_path / "serve.sock"
        named = [(f"f{i}.c", GOOD_SOURCE.replace("100", str(100 + i)))
                 for i in range(6)]
        first_daemon = _spawn_daemon(tmp_path, sock, delay_s=0.3)
        replacement = None
        client = None
        try:
            client = connect(
                f"unix:{sock}", timeout=30.0,
                retry=RetryPolicy(max_attempts=12, base_delay_s=0.05))
            stream = client.stream_sources(named, ordered=True)
            first = next(stream)
            assert first.name == "f0.c"
            # kill -9 the daemon mid-reply, then stand up its
            # replacement on the same socket before the client's
            # retries give up
            first_daemon.kill()
            first_daemon.wait(timeout=30)
            replacement = _spawn_daemon(tmp_path, sock, delay_s=0.0)
            rest = list(stream)
            names = [first.name] + [r.name for r in rest]
            # exactly once per file, in order, across the restart
            assert names == [name for name, _ in named]
            assert all(r.error is None for r in [first] + rest)
            assert all(r.suggestions for r in [first] + rest)
        finally:
            if client is not None:
                client.close()
            for proc in (first_daemon, replacement):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

    def test_busy_storm_drains_without_duplicates(self):
        """Clients hammering a depth-1 admission queue: every 'busy'
        refusal is absorbed by the RetryPolicy and every client ends
        with exactly its own files."""
        from repro.serve import SuggestServer

        slow = SuggestionService(
            _StubModel(1, "par"),
            {"reduction": _StubModel(1, "red")},
        )
        with SuggestServer({"default": slow},
                           queue_depth=1).start() as srv:
            outcomes: dict[int, list | Exception] = {}

            def one_client(cid: int) -> None:
                named = [(f"c{cid}-f{i}.c",
                          GOOD_SOURCE.replace("100", str(100 + cid)))
                         for i in range(3)]
                try:
                    with connect(srv.address,
                                 retry=RetryPolicy(
                                     max_attempts=40,
                                     base_delay_s=0.01,
                                     seed=cid)) as client:
                        outcomes[cid] = client.suggest_sources(named)
                except Exception as exc:      # noqa: BLE001
                    outcomes[cid] = exc

            threads = [threading.Thread(target=one_client, args=(cid,))
                       for cid in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        for cid in range(6):
            result = outcomes.get(cid)
            assert isinstance(result, list), f"client {cid}: {result!r}"
            assert [r.name for r in result] == \
                [f"c{cid}-f{i}.c" for i in range(3)]


class TestPlanMechanics:
    def test_plan_round_trips_through_env(self):
        plan = FaultPlan((Fault("kill-worker", sid=2, after_files=3),
                          Fault("tear-entry", match="suggest")),
                         seed=11)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert faults.ENV_VAR in plan.env()

    def test_unknown_kind_refused(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode-in-a-new-way")

    def test_times_bounds_firings(self):
        faults.activate(FaultPlan((
            Fault("poison-file", match="x.c", times=2),)))
        try:
            fired = [faults.on_worker_file(0, i, "x.c") is not None
                     for i in range(4)]
        finally:
            faults.reset()
        assert fired == [True, True, False, False]

    def test_inactive_hooks_are_inert(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.reset()
        assert faults.on_worker_file(0, 0, "a.c") is None
        assert faults.on_store_write("/any/path.json") is None
        faults.on_bundle_load("/any/bundle")     # no raise
        assert faults.active() is False

    def test_jitter_is_deterministic_and_bounded(self):
        plan = FaultPlan(seed=3)
        values = [plan.jitter(f"k{i}") for i in range(8)]
        assert values == [plan.jitter(f"k{i}") for i in range(8)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) == len(values)
