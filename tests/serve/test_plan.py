"""Tests for the shard planner (repro.serve.plan)."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.serve import ServeConfig, auto_shards, plan_shards, resolve_shards


def _named(sizes):
    return [(f"f{i}.c", "x" * size) for i, size in enumerate(sizes)]


class TestPlanShards:
    def test_covers_every_file_exactly_once(self):
        named = _named([10, 200, 30, 40, 5, 170, 60])
        shards = plan_shards(named, 3)
        indices = sorted(i for s in shards for i in s.indices)
        assert indices == list(range(len(named)))
        for shard in shards:
            assert shard.items == [named[i] for i in shard.indices]

    def test_deterministic(self):
        named = _named([7, 7, 7, 100, 3, 50, 50, 2])
        first = plan_shards(named, 3)
        second = plan_shards(named, 3)
        assert [s.indices for s in first] == [s.indices for s in second]
        assert [s.sid for s in first] == [s.sid for s in second]

    def test_balanced_by_size(self):
        # LPT bound: the heaviest shard carries at most the ideal share
        # plus one file — no pathological straggler.
        sizes = [90, 10, 10, 10, 10, 10, 50, 40, 40, 60]
        shards = plan_shards(_named(sizes), 3)
        loads = [s.total_bytes for s in shards]
        assert max(loads) <= sum(sizes) / 3 + max(sizes)

    def test_more_shards_than_files_drops_empties(self):
        shards = plan_shards(_named([5, 5]), 8)
        assert len(shards) == 2
        assert all(len(s) == 1 for s in shards)

    def test_single_shard_keeps_input_order(self):
        named = _named([3, 100, 1, 50])
        (shard,) = plan_shards(named, 1)
        assert shard.indices == [0, 1, 2, 3]
        assert shard.items == named

    def test_empty_corpus(self):
        assert plan_shards([], 4) == []

    def test_within_shard_order_is_input_order(self):
        named = _named([10, 90, 20, 80, 30, 70])
        for shard in plan_shards(named, 2):
            assert shard.indices == sorted(shard.indices)

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=500),
                       max_size=40),
        n_shards=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, sizes, n_shards):
        named = _named(sizes)
        shards = plan_shards(named, n_shards)
        assert sorted(i for s in shards for i in s.indices) == \
            list(range(len(named)))
        assert len(shards) <= max(1, min(n_shards, len(named)))
        assert all(s.items for s in shards)
        assert all(s.total_bytes == sum(len(src) for _, src in s.items)
                   for s in shards)


class TestAutoShards:
    def test_single_cpu_stays_in_process(self):
        # the BENCH_shard_scaling 0.81x regression: forked workers on
        # one core only add overhead
        assert auto_shards(96, 10_000_000, cpus=1) == 1

    def test_single_file_stays_in_process(self):
        assert auto_shards(1, 10_000_000, cpus=16) == 1

    def test_capped_by_cpus(self):
        assert auto_shards(1000, 100_000_000, cpus=4) == 4

    def test_capped_by_file_count(self):
        # a file is the unit of work: never more shards than files
        assert auto_shards(3, 100_000_000, cpus=16) == 3

    def test_capped_by_corpus_bytes(self):
        # a tiny corpus never fans out, however many files it has
        assert auto_shards(1000, 20_000, cpus=16) == 1

    def test_resolve_passthrough_and_auto(self):
        named = [(f"f{i}.c", "x" * 4096) for i in range(64)]
        assert resolve_shards(3, named) == 3
        assert resolve_shards("auto", named) == \
            auto_shards(64, 64 * 4096)
        assert resolve_shards(0, named) == resolve_shards("auto", named)

    def test_resolve_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_shards("many", [])
        with pytest.raises(ValueError):
            resolve_shards(-2, [])

    def test_serve_config_accepts_auto(self):
        assert ServeConfig(shards="auto").shards == "auto"

    def test_few_large_files_still_fan_out(self):
        # 4 x 10 MB files on a 16-core box: one shard per file
        assert auto_shards(4, 4 * 10_000_000, cpus=16) == 4

    def test_effective_cpu_count_positive(self):
        from repro.serve.plan import effective_cpu_count

        assert effective_cpu_count() >= 1
