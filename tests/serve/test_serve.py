"""Tests for the batched suggestion service (repro.serve)."""

import numpy as np
import pytest

from repro.cfront import parse_loop
from repro.graphs import EncodeCache, build_aug_ast, build_graph_vocab
from repro.serve import (
    FileSuggestions,
    ServeConfig,
    SuggestionService,
    parse_many,
    parse_one,
)
from repro.suggest import PragmaSuggester

GOOD_SOURCE = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""

OTHER_SOURCE = """
double c[50];
void scale(void) {
    int j;
    for (j = 0; j < 50; j++) c[j] = c[j] * 2.0;
}
"""

BAD_SOURCE = "void broken(void) { for (i = 0; i < ; }"


class _StubModel:
    """predict_samples stub counting its calls."""

    def __init__(self, value: int) -> None:
        self.value = value
        self.calls: list[int] = []

    def predict_samples(self, samples):
        self.calls.append(len(samples))
        return np.full(len(samples), self.value, dtype=int)


def _vocab():
    graphs = [
        build_aug_ast(parse_loop(src))
        for src in ("for (i = 0; i < n; i++) s += a[i];",
                    "for (i = 0; i < n; i++) a[i] = b[i];")
    ]
    return build_graph_vocab(graphs)


class _FakeTrained:
    """Implements the TrainedGraphModel serving protocol over a stub."""

    representation = "aug"

    def __init__(self, value: int, vocab) -> None:
        self.value = value
        self.vocab = vocab
        self.encoded_calls: list[int] = []

    def predict_samples(self, samples, cache=None):
        return np.full(len(samples), self.value, dtype=int)

    def predict_encoded(self, graphs, batch_size=None):
        self.encoded_calls.append(len(graphs))
        return np.full(len(graphs), self.value, dtype=int)

    def encode_cache(self, max_entries=4096):
        return EncodeCache(self.vocab, representation=self.representation,
                           max_entries=max_entries)

    def encoder_key(self):
        return (
            self.representation,
            tuple(sorted(self.vocab.types.tokens.items())),
            tuple(sorted(self.vocab.texts.tokens.items())),
        )


def _stub_models(parallel=1, **clauses):
    defaults = {"reduction": 0, "private": 0, "simd": 0, "target": 0}
    defaults.update(clauses)
    return _StubModel(parallel), {k: _StubModel(v)
                                  for k, v in defaults.items()}


class TestParseStage:
    def test_parse_one_extracts_requests(self):
        pf = parse_one(("kernel.c", GOOD_SOURCE))
        assert pf.error is None
        assert len(pf.requests) == 2

    def test_parse_one_reports_frontend_errors(self):
        pf = parse_one(("broken.c", BAD_SOURCE))
        assert pf.error is not None
        assert pf.requests == []

    def test_parallel_parse_matches_serial(self):
        items = [("a.c", GOOD_SOURCE), ("b.c", OTHER_SOURCE),
                 ("c.c", BAD_SOURCE), ("d.c", GOOD_SOURCE)]
        serial = parse_many(items, workers=1)
        parallel = parse_many(items, workers=2)
        assert [p.name for p in parallel] == [p.name for p in serial]
        assert [p.requests for p in parallel] == [p.requests for p in serial]
        assert [p.error is None for p in parallel] == \
               [p.error is None for p in serial]


class TestSuggestionService:
    def test_one_predict_call_per_model(self):
        parallel, clauses = _stub_models(parallel=1, reduction=1)
        service = SuggestionService(parallel, clauses)
        results = service.suggest_sources(
            [("a.c", GOOD_SOURCE), ("b.c", OTHER_SOURCE)]
        )
        assert [len(r.suggestions) for r in results] == [2, 1]
        # three loops across two files: exactly one batched call per model
        assert parallel.calls == [3]
        for model in clauses.values():
            assert model.calls == [3]

    def test_matches_per_loop_suggester(self):
        parallel, clauses = _stub_models(parallel=1, reduction=1, private=1)
        service = SuggestionService(parallel, clauses)
        batched = service.suggest_sources([("a.c", GOOD_SOURCE)])[0]
        baseline = PragmaSuggester(parallel, clauses).suggest_file(GOOD_SOURCE)
        assert [s.render() for s in batched.suggestions] == \
               [s.render() for s in baseline]

    def test_error_files_fan_out_empty(self):
        parallel, clauses = _stub_models()
        service = SuggestionService(parallel, clauses)
        results = service.suggest_sources(
            [("a.c", GOOD_SOURCE), ("broken.c", BAD_SOURCE)]
        )
        assert results[1].error is not None
        assert results[1].suggestions == []
        assert len(results[0].suggestions) == 2

    def test_trained_protocol_shares_one_cache(self):
        vocab = _vocab()
        parallel = _FakeTrained(1, vocab)
        clauses = {name: _FakeTrained(0, vocab)
                   for name in ("reduction", "private")}
        service = SuggestionService(parallel, clauses)
        # duplicated file: its requests dedupe before reaching the models
        results = service.suggest_sources(
            [("a.c", GOOD_SOURCE), ("b.c", GOOD_SOURCE)]
        )
        assert [len(r.suggestions) for r in results] == [2, 2]
        assert len(service._caches) == 1
        stats = next(iter(service.cache_stats().values()))
        assert stats["entries"] == 2          # two distinct loop sources
        assert stats["misses"] == 2
        assert stats["hits"] == 4             # 2 clause models × 2 loops
        # every model saw only the distinct loops, pre-encoded + batched
        assert parallel.encoded_calls == [2]
        for model in clauses.values():
            assert model.encoded_calls == [2]

    def test_suggest_dir_reads_files(self, tmp_path):
        (tmp_path / "k1.c").write_text(GOOD_SOURCE)
        (tmp_path / "k2.c").write_text(OTHER_SOURCE)
        (tmp_path / "notes.txt").write_text("not C")
        parallel, clauses = _stub_models(parallel=1)
        service = SuggestionService(parallel, clauses,
                                    ServeConfig(workers=1))
        results = service.suggest_dir(tmp_path)
        assert [r.name.endswith(("k1.c", "k2.c")) for r in results] == \
               [True, True]
        assert sum(len(r.suggestions) for r in results) == 3

    def test_n_parallel_property(self):
        fs = FileSuggestions(name="x.c")
        assert fs.n_parallel == 0
