"""Tests for the versioned serving wire protocol."""

import io
import struct

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    BatchResult,
    Done,
    Error,
    FileResult,
    Goodbye,
    Hello,
    HelloOk,
    ProtocolError,
    SuggestRequest,
    decode_message,
    encode_frame,
    read_frame,
    read_message,
    write_message,
)


def _round_trip(message):
    buf = io.BytesIO()
    write_message(buf, message)
    buf.seek(0)
    return read_message(buf)


class TestFraming:
    def test_frame_round_trip(self):
        buf = io.BytesIO(encode_frame({"kind": "bye", "x": 1}))
        assert read_frame(buf) == {"kind": "bye", "x": 1}

    def test_clean_eof_is_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_multiple_frames_in_sequence(self):
        buf = io.BytesIO(encode_frame({"a": 1}) + encode_frame({"b": 2}))
        assert read_frame(buf) == {"a": 1}
        assert read_frame(buf) == {"b": 2}
        assert read_frame(buf) is None

    def test_overlong_declared_length_rejected(self):
        buf = io.BytesIO(struct.pack(">I", 10_000) + b"x" * 10_000)
        with pytest.raises(ProtocolError) as exc:
            read_frame(buf, max_bytes=1024)
        assert exc.value.code == "bad-frame"

    def test_overlong_encode_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            encode_frame({"pad": "x" * 2048}, max_bytes=1024)
        assert exc.value.code == "bad-frame"

    def test_truncated_mid_body_rejected(self):
        frame = encode_frame({"kind": "bye"})
        with pytest.raises(ProtocolError) as exc:
            read_frame(io.BytesIO(frame[:-2]))
        assert exc.value.code == "bad-frame"

    def test_truncated_mid_header_rejected(self):
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_non_json_body_rejected(self):
        body = b"not json at all"
        buf = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError) as exc:
            read_frame(buf)
        assert exc.value.code == "bad-frame"

    def test_non_object_body_rejected(self):
        body = b"[1, 2, 3]"
        buf = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError) as exc:
            read_frame(buf)
        assert exc.value.code == "bad-frame"


class TestMessages:
    def test_hello_round_trip(self):
        msg = _round_trip(Hello(client="test-client"))
        assert isinstance(msg, Hello)
        assert msg.protocol == protocol.PROTOCOL_VERSION
        assert msg.client == "test-client"

    def test_hello_ok_round_trip(self):
        msg = _round_trip(HelloOk(server="s",
                                  capabilities={"bundles": ["a"]}))
        assert isinstance(msg, HelloOk)
        assert msg.capabilities == {"bundles": ["a"]}

    def test_suggest_round_trip_defaults(self):
        msg = _round_trip(SuggestRequest(sources=(("a.c", "int x;"),)))
        assert isinstance(msg, SuggestRequest)
        assert msg.sources == (("a.c", "int x;"),)
        assert msg.bundle is None
        assert msg.ordered is True
        assert msg.stream is True
        assert msg.shards is None

    def test_suggest_round_trip_explicit(self):
        msg = _round_trip(SuggestRequest(
            sources=(("a.c", "x"), ("b.c", "y")), bundle="advisor",
            ordered=False, stream=False, shards="auto"))
        assert msg.bundle == "advisor"
        assert msg.ordered is False
        assert msg.stream is False
        assert msg.shards == "auto"

    def test_file_batch_done_error_bye_round_trip(self):
        fr = _round_trip(FileResult(index=3, name="a.c",
                                    payload={"error": None,
                                             "suggestions": []}))
        assert fr == FileResult(index=3, name="a.c",
                                payload={"error": None,
                                         "suggestions": []})
        batch = _round_trip(BatchResult(files=(fr,)))
        assert batch.files == (fr,)
        done = _round_trip(Done(files=2, errors=1, stats={"x": 1}))
        assert (done.files, done.errors, done.stats) == (2, 1, {"x": 1})
        err = _round_trip(Error(code="bad-frame", message="nope"))
        assert err.code == "bad-frame"
        assert isinstance(_round_trip(Goodbye()), Goodbye)

    def test_error_raise_carries_code(self):
        with pytest.raises(ProtocolError) as exc:
            Error(code="unknown-bundle", message="m").raise_()
        assert exc.value.code == "unknown-bundle"


class TestSchemaChecks:
    """A decoded frame that is not a valid message is ``bad-request``."""

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "frobnicate"})
        assert exc.value.code == "bad-request"

    def test_missing_kind(self):
        with pytest.raises(ProtocolError):
            decode_message({"protocol": 1})

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "hello"})       # no protocol
        assert "protocol" in str(exc.value)

    def test_wrong_field_type(self):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "hello", "protocol": "one"})
        assert exc.value.code == "bad-request"

    def test_null_optional_field_uses_default(self):
        msg = decode_message({"kind": "suggest", "sources": [],
                              "bundle": None, "shards": None})
        assert msg.bundle is None and msg.shards is None

    def test_bad_source_pairs(self):
        for sources in ([["only-name"]], [["a", 1]], ["flat"]):
            with pytest.raises(ProtocolError):
                decode_message({"kind": "suggest", "sources": sources})

    def test_addressing_modes_are_exclusive(self):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "suggest",
                            "sources": [["a.c", "x"]],
                            "dir": "/corpus"})
        assert "exactly one" in str(exc.value)
        with pytest.raises(ProtocolError):
            decode_message({"kind": "suggest", "paths": ["a.c"],
                            "dir": "/corpus"})

    def test_paths_and_dir_round_trip(self):
        msg = _round_trip(SuggestRequest(paths=("x.c", "y.c")))
        assert msg.paths == ("x.c", "y.c")
        assert msg.dir is None
        msg = _round_trip(SuggestRequest(dir="/corpus", pattern="*.h"))
        assert (msg.dir, msg.pattern) == ("/corpus", "*.h")

    def test_paths_must_be_strings(self):
        with pytest.raises(ProtocolError):
            decode_message({"kind": "suggest", "paths": [1, 2]})

    def test_bad_shards_values(self):
        with pytest.raises(ProtocolError):
            decode_message({"kind": "suggest", "sources": [],
                            "shards": "many"})
        with pytest.raises(ProtocolError):
            decode_message({"kind": "suggest", "sources": [],
                            "shards": -2})

    def test_batch_entries_must_be_objects(self):
        with pytest.raises(ProtocolError):
            decode_message({"kind": "batch", "files": [42]})
