"""Tests for the long-lived suggestion daemon and its client library.

Lifecycle edges the protocol must survive: version-mismatch handshake
refusal, malformed and over-long frames, a client vanishing
mid-stream, a drain racing idle connections, and concurrent clients
sharing one warm store without duplicating any work.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.client import Client, ClientError, RetryPolicy, connect
from repro.serve import (
    SuggestionService,
    SuggestionStore,
    SuggestServer,
    protocol,
)

GOOD_SOURCE = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""

OTHER_SOURCE = """
double c[50];
void scale(void) {
    int j;
    for (j = 0; j < 50; j++) c[j] = c[j] * 2.0;
}
"""

BAD_SOURCE = "void broken(void) { for (i = 0; i < ; }"


class _StubModel:
    """Picklable fingerprinted stub following the suggester contract."""

    def __init__(self, value: int, name: str = "stub") -> None:
        self.value = value
        self.name = name

    def predict_samples(self, samples):
        return np.full(len(samples), self.value, dtype=int)

    def fingerprint(self) -> str:
        return f"stub:{self.name}:{self.value}"


class _SlowModel(_StubModel):
    """Stub whose forward takes a fixed wall time — for timeout and
    deadline tests that need a reply slower than the client waits."""

    def __init__(self, value: int, name: str = "slow",
                 delay_s: float = 1.0) -> None:
        super().__init__(value, name)
        self.delay_s = delay_s

    def predict_samples(self, samples):
        time.sleep(self.delay_s)
        return super().predict_samples(samples)


def _slow_service(delay_s: float) -> SuggestionService:
    return SuggestionService(
        _SlowModel(1, delay_s=delay_s),
        {"reduction": _StubModel(0, "slow-red")},
    )


def _service(store=None, parallel=1, name="stub") -> SuggestionService:
    return SuggestionService(
        _StubModel(parallel, name),
        {"reduction": _StubModel(0, name + "-red")},
        store=store,
    )


@pytest.fixture
def server():
    srv = SuggestServer({"default": _service()}).start()
    yield srv
    srv.shutdown()


def _raw_connection(address: str):
    host, port = address.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=10)
    return sock, sock.makefile("rb"), sock.makefile("wb")


class TestHandshake:
    def test_capabilities_advertised(self, server):
        with connect(server.address) as client:
            caps = client.capabilities
        assert caps["bundles"] == ["default"]
        assert caps["default_bundle"] == "default"
        assert caps["clauses"]["default"] == ["reduction"]
        assert caps["max_frame_bytes"] == protocol.MAX_FRAME_BYTES

    def test_protocol_mismatch_refused(self, server):
        sock, rfile, wfile = _raw_connection(server.address)
        try:
            protocol.write_message(wfile, protocol.Hello(protocol=999))
            reply = protocol.read_message(rfile)
            assert isinstance(reply, protocol.Error)
            assert reply.code == "protocol-mismatch"
            # the refusal closes the connection
            assert protocol.read_frame(rfile) is None
        finally:
            sock.close()

    def test_non_hello_first_frame_refused(self, server):
        sock, rfile, wfile = _raw_connection(server.address)
        try:
            protocol.write_message(
                wfile, protocol.SuggestRequest(sources=()))
            reply = protocol.read_message(rfile)
            assert isinstance(reply, protocol.Error)
            assert reply.code == "bad-request"
        finally:
            sock.close()

    def test_client_rejects_version_skew(self, server, monkeypatch):
        import repro.client as client_mod

        monkeypatch.setattr(client_mod.protocol, "PROTOCOL_VERSION", 999)
        with pytest.raises(ClientError) as exc:
            connect(server.address)
        assert exc.value.code == "protocol-mismatch"


class TestFrameRejection:
    def test_malformed_frame_rejected(self, server):
        sock, rfile, wfile = _raw_connection(server.address)
        try:
            protocol.write_message(wfile, protocol.Hello())
            assert isinstance(protocol.read_message(rfile),
                              protocol.HelloOk)
            body = b"this is not json"
            wfile.write(struct.pack(">I", len(body)) + body)
            wfile.flush()
            reply = protocol.read_message(rfile)
            assert isinstance(reply, protocol.Error)
            assert reply.code == "bad-frame"
            assert protocol.read_frame(rfile) is None
        finally:
            sock.close()

    def test_overlong_frame_rejected(self):
        service = _service()
        with SuggestServer({"default": service},
                           max_frame_bytes=4096).start() as srv:
            sock, rfile, wfile = _raw_connection(srv.address)
            try:
                protocol.write_message(wfile, protocol.Hello())
                assert isinstance(protocol.read_message(rfile),
                                  protocol.HelloOk)
                # a declared length far past the limit, no body needed
                wfile.write(struct.pack(">I", 1 << 30))
                wfile.flush()
                reply = protocol.read_message(rfile)
                assert isinstance(reply, protocol.Error)
                assert reply.code == "bad-frame"
                assert protocol.read_frame(rfile) is None
            finally:
                sock.close()

    def test_slow_mid_frame_sender_is_not_corrupted(self, server):
        """A frame arriving in pieces slower than the idle poll tick
        must be reassembled, not misread as a framing error."""
        sock, rfile, wfile = _raw_connection(server.address)
        try:
            protocol.write_message(wfile, protocol.Hello())
            assert isinstance(protocol.read_message(rfile),
                              protocol.HelloOk)
            frame = protocol.encode_frame(protocol.SuggestRequest(
                sources=(("a.c", GOOD_SOURCE),)).to_wire())
            half = len(frame) // 2
            sock.sendall(frame[:half])
            time.sleep(1.2)           # > 2 idle-poll ticks, mid-frame
            sock.sendall(frame[half:])
            reply = protocol.read_message(rfile)
            assert isinstance(reply, protocol.FileResult)
            done = protocol.read_message(rfile)
            assert isinstance(done, protocol.Done)
        finally:
            sock.close()

    def test_schema_violation_rejected(self, server):
        sock, rfile, wfile = _raw_connection(server.address)
        try:
            protocol.write_message(wfile, protocol.Hello())
            assert isinstance(protocol.read_message(rfile),
                              protocol.HelloOk)
            protocol.write_frame(wfile, {"kind": "suggest",
                                         "sources": "not-a-list"})
            reply = protocol.read_message(rfile)
            assert isinstance(reply, protocol.Error)
            assert reply.code == "bad-request"
        finally:
            sock.close()


class TestServing:
    def test_round_trip_matches_in_process(self, server):
        named = [("a.c", GOOD_SOURCE), ("b.c", OTHER_SOURCE),
                 ("broken.c", BAD_SOURCE)]
        local = _service().suggest_sources(named)
        with connect(server.address) as client:
            batch = client.suggest_sources(named)
            streamed = list(client.stream_sources(named))
        for remote in (batch, streamed):
            assert [r.to_payload() for r in remote] == \
                [r.to_payload() for r in local]
            assert [r.name for r in remote] == [r.name for r in local]

    def test_done_frame_reports_stats(self, server):
        with connect(server.address) as client:
            list(client.stream_sources([("a.c", GOOD_SOURCE)]))
            done = client.last_done
        assert done.files == 1
        assert done.errors == 0
        assert done.stats["forwards"]["graphs"] > 0

    def test_error_files_counted(self, server):
        with connect(server.address) as client:
            client.suggest_sources([("broken.c", BAD_SOURCE)])
            assert client.last_done.errors == 1

    def test_unknown_bundle_keeps_connection_alive(self, server):
        with connect(server.address) as client:
            with pytest.raises(ClientError) as exc:
                client.suggest_sources([("a.c", GOOD_SOURCE)],
                                       bundle="nope")
            assert exc.value.code == "unknown-bundle"
            # request-level refusal: the same connection still serves
            results = client.suggest_sources([("a.c", GOOD_SOURCE)])
        assert len(results[0].suggestions) == 2

    def test_bundle_selection_by_name(self):
        services = {
            "yes": _service(parallel=1, name="yes"),
            "no": _service(parallel=0, name="no"),
        }
        with SuggestServer(services, default="yes").start() as srv:
            with connect(srv.address) as client:
                assert client.bundles() == ["no", "yes"]
                by_default = client.suggest_sources(
                    [("a.c", GOOD_SOURCE)])
                by_no = client.suggest_sources(
                    [("a.c", GOOD_SOURCE)], bundle="no")
        assert all(s.parallel for s in by_default[0].suggestions)
        assert not any(s.parallel for s in by_no[0].suggestions)

    def test_unix_socket_transport(self, tmp_path):
        sock_path = tmp_path / "serve.sock"
        with SuggestServer({"default": _service()},
                           unix_path=sock_path).start() as srv:
            assert srv.address == str(sock_path)
            with connect(f"unix:{sock_path}") as client:
                results = client.suggest_sources([("a.c", GOOD_SOURCE)])
            assert len(results[0].suggestions) == 2
        assert not sock_path.exists()      # removed on shutdown

    def test_empty_request(self, server):
        with connect(server.address) as client:
            assert client.suggest_sources([]) == []
            assert client.last_done.files == 0

    def test_server_side_dir(self, tmp_path):
        """A colocated daemon reads the corpus itself: no contents
        travel client → server — but only under an opted-in root."""
        (tmp_path / "a.c").write_text(GOOD_SOURCE)
        (tmp_path / "b.c").write_text(OTHER_SOURCE)
        local = _service().suggest_dir(tmp_path)
        with SuggestServer({"default": _service()},
                           local_roots=(tmp_path,)).start() as srv:
            with connect(srv.address) as client:
                assert client.capabilities["server_side_paths"] is True
                batch = client.suggest_server_dir(tmp_path)
                streamed = list(client.stream_server_dir(tmp_path))
        for remote in (batch, streamed):
            assert [r.to_payload() for r in remote] == \
                [r.to_payload() for r in local]

    def test_server_side_paths(self, tmp_path):
        path = tmp_path / "a.c"
        path.write_text(GOOD_SOURCE)
        with SuggestServer({"default": _service()},
                           local_roots=(tmp_path,)).start() as srv:
            with connect(srv.address) as client:
                results = client.suggest_server_paths([path])
        assert results[0].name == str(path)
        assert len(results[0].suggestions) == 2

    def test_server_side_reads_disabled_by_default(self, server,
                                                   tmp_path):
        """Acceptance of the security model: without an explicit
        opt-in root, a daemon refuses to read its own filesystem."""
        (tmp_path / "a.c").write_text(GOOD_SOURCE)
        with connect(server.address) as client:
            assert client.capabilities["server_side_paths"] is False
            with pytest.raises(ClientError) as exc:
                client.suggest_server_dir(tmp_path)
            assert exc.value.code == "bad-request"
            assert "disabled" in str(exc.value)

    def test_server_side_path_outside_root_refused(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        secret = tmp_path / "secret.c"
        secret.write_text(GOOD_SOURCE)
        with SuggestServer({"default": _service()},
                           local_roots=(corpus,)).start() as srv:
            with connect(srv.address) as client:
                with pytest.raises(ClientError) as exc:
                    client.suggest_server_paths([secret])
                assert exc.value.code == "bad-request"
                assert "outside" in str(exc.value)
                # .. escapes are resolved before the check
                with pytest.raises(ClientError):
                    client.suggest_server_paths(
                        [corpus / ".." / "secret.c"])

    def test_server_side_missing_dir_refused(self, tmp_path):
        with SuggestServer({"default": _service()},
                           local_roots=(tmp_path,)).start() as srv:
            with connect(srv.address) as client:
                with pytest.raises(ClientError) as exc:
                    client.suggest_server_dir(tmp_path / "nope")
                assert exc.value.code == "bad-request"
                # request-level refusal: connection still serves
                assert client.suggest_sources([]) == []

    def test_server_side_unreadable_path_refused(self, tmp_path):
        with SuggestServer({"default": _service()},
                           local_roots=(tmp_path,)).start() as srv:
            with connect(srv.address) as client:
                with pytest.raises(ClientError) as exc:
                    client.suggest_server_paths([tmp_path / "ghost.c"])
                assert exc.value.code == "bad-request"

    def test_abandoned_stream_does_not_poison_the_connection(
            self, server):
        """Dropping a streaming generator mid-reply must not leak the
        old reply's frames into the next request's results."""
        named = [(f"f{i}.c", GOOD_SOURCE) for i in range(3)]
        with connect(server.address) as client:
            stream = client.stream_sources(named)
            first = next(stream)
            assert first.name == "f0.c"
            del stream              # abandon mid-reply, no close()
            results = client.suggest_sources([("fresh.c", OTHER_SOURCE)])
            assert [r.name for r in results] == ["fresh.c"]
            streamed = list(client.stream_sources(
                [("after.c", OTHER_SOURCE)]))
            assert [r.name for r in streamed] == ["after.c"]


class TestClientResilience:
    def test_read_timeout_does_not_poison_the_connection(self):
        """Regression: a reply slower than the client's read timeout
        leaves the old reply's frames in flight; the next request must
        not read them as its own results."""
        with SuggestServer({"default": _service(),
                            "slow": _slow_service(1.5)}).start() as srv:
            client = connect(srv.address, timeout=0.4)
            try:
                with pytest.raises(ClientError) as exc:
                    client.suggest_sources([("slow.c", GOOD_SOURCE)],
                                           bundle="slow")
                assert exc.value.code == "timeout"
                # without the reconnect, these results would be the
                # timed-out request's late frames
                results = client.suggest_sources(
                    [("fresh.c", OTHER_SOURCE)])
                assert [r.name for r in results] == ["fresh.c"]
                assert results[0].suggestions
            finally:
                client.close()

    def test_ping_answers_with_queue_depth(self, server):
        with connect(server.address) as client:
            assert client.capabilities["ping"] is True
            pong = client.ping(token="probe-1")
            assert pong.token == "probe-1"
            assert pong.queued == 0
            assert pong.running == 0

    def test_degraded_bundle_surfaces_in_capabilities(self):
        srv = SuggestServer(
            {"default": _service()},
            degraded={"broken": "manifest corrupt"},
        ).start()
        try:
            with connect(srv.address) as client:
                assert client.capabilities["degraded"] == {
                    "broken": "manifest corrupt"}
                with pytest.raises(ClientError) as exc:
                    client.suggest_sources([("a.c", GOOD_SOURCE)],
                                           bundle="broken")
                assert exc.value.code == "unknown-bundle"
                assert "manifest corrupt" in str(exc.value)
                # the refusal names the load failure but keeps both
                # the connection and the healthy bundle serving
                results = client.suggest_sources([("a.c", GOOD_SOURCE)])
                assert results[0].suggestions
        finally:
            srv.shutdown()

    def test_deadline_exceeded_is_an_error_not_a_hang(self):
        with SuggestServer({"default": _slow_service(1.0)}).start() \
                as srv:
            with connect(srv.address, deadline_s=0.2) as client:
                start = time.monotonic()
                with pytest.raises(ClientError) as exc:
                    client.suggest_sources([("a.c", GOOD_SOURCE)])
                assert exc.value.code == "deadline-exceeded"
                assert time.monotonic() - start < 10

    def test_retry_policy_reconnects_after_connection_loss(self, server):
        client = connect(server.address,
                         retry=RetryPolicy(base_delay_s=0.01))
        try:
            # sever the transport under the client's feet
            client._sock.close()
            client._broken = True
            results = client.suggest_sources([("a.c", GOOD_SOURCE)])
            assert [r.name for r in results] == ["a.c"]
            assert results[0].suggestions
        finally:
            client.close()


class TestLifecycle:
    def test_client_disconnect_mid_stream_leaves_server_up(self, server):
        named = [(f"f{i}.c", GOOD_SOURCE + f"\n// {i}\n" * i)
                 for i in range(40)]
        sock, rfile, wfile = _raw_connection(server.address)
        protocol.write_message(wfile, protocol.Hello())
        assert isinstance(protocol.read_message(rfile), protocol.HelloOk)
        protocol.write_message(
            wfile, protocol.SuggestRequest(
                sources=tuple(named), ordered=True, stream=True))
        first = protocol.read_message(rfile)
        assert isinstance(first, protocol.FileResult)
        # vanish abruptly: RST instead of FIN, mid-reply
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        sock.close()
        # the server must shrug that off and keep serving new clients
        deadline = time.time() + 10
        while True:
            try:
                with connect(server.address) as client:
                    results = client.suggest_sources(
                        [("a.c", GOOD_SOURCE)])
                break
            except ClientError:
                if time.time() > deadline:
                    raise
                time.sleep(0.1)
        assert len(results[0].suggestions) == 2

    def test_shutdown_refuses_new_connections(self):
        srv = SuggestServer({"default": _service()}).start()
        address = srv.address
        srv.shutdown()
        host, port = address.rsplit(":", 1)
        with pytest.raises((ClientError, OSError)):
            connect(address, timeout=2)

    def test_shutdown_closes_idle_connections(self):
        srv = SuggestServer({"default": _service()}).start()
        client = connect(srv.address)
        try:
            # shutdown drains: the idle connection closes at the next
            # poll tick instead of pinning the server forever
            srv.shutdown()
            with pytest.raises(ClientError):
                client.suggest_sources([("a.c", GOOD_SOURCE)])
        finally:
            client.close()

    def test_shutdown_is_idempotent(self):
        srv = SuggestServer({"default": _service()}).start()
        srv.shutdown()
        srv.shutdown()

    def test_concurrent_shutdown_callers_both_block_until_done(self):
        srv = SuggestServer({"default": _service()}).start()
        finished: list[float] = []

        def stop() -> None:
            srv.shutdown()
            finished.append(time.time())

        threads = [threading.Thread(target=stop) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(finished) == 2
        assert srv._stopped.is_set()

    def test_stale_unix_socket_is_reclaimed(self, tmp_path):
        sock_path = tmp_path / "serve.sock"
        # a crashed daemon's leftover: a bound-then-abandoned socket
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(str(sock_path))
        dead.close()
        assert sock_path.is_socket()
        with SuggestServer({"default": _service()},
                           unix_path=sock_path).start() as srv:
            with connect(f"unix:{sock_path}") as client:
                assert client.suggest_sources([]) == []

    def test_live_unix_socket_is_not_stolen(self, tmp_path):
        sock_path = tmp_path / "serve.sock"
        with SuggestServer({"default": _service()},
                           unix_path=sock_path).start():
            with pytest.raises(OSError, match="already listening"):
                SuggestServer({"default": _service()},
                              unix_path=sock_path)


class TestWarmStoreSharing:
    def test_concurrent_clients_zero_duplicate_forwards(self, tmp_path):
        """Acceptance: two concurrent streaming clients over one warm
        store — the overlapping files are computed exactly once."""
        store = SuggestionStore(tmp_path / "cache")
        service = _service(store=store)
        named = [("a.c", GOOD_SOURCE), ("b.c", OTHER_SOURCE)]
        with SuggestServer({"default": service}).start() as srv:
            results: dict[int, list] = {}
            errors: list = []

            def one_client(cid: int) -> None:
                try:
                    with connect(srv.address) as client:
                        results[cid] = [
                            fs.to_payload() for fs in
                            client.stream_sources(named)
                        ]
                except Exception as exc:   # surfaces in the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=one_client, args=(cid,))
                       for cid in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            assert results[0] == results[1]
            stats = service.cache_stats()
        # one pipeline pass total: the second client's files were
        # either coalesced into the first client's forward (both
        # requests landed in one micro-batch round) or served entirely
        # from the warm store — never computed twice
        assert stats["forwards"]["calls"] == 2      # 2 models, once each
        assert (stats["store"]["suggest_hits"]
                + stats["coalesce"]["deduped_files"]) == len(named)
        assert stats["store"]["parse_misses"] == len(named)
        assert stats["store"]["parse_hits"] == 0

    def test_sequential_clients_share_warmth(self, tmp_path):
        store = SuggestionStore(tmp_path / "cache")
        service = _service(store=store)
        with SuggestServer({"default": service}).start() as srv:
            with connect(srv.address) as client:
                client.suggest_sources([("a.c", GOOD_SOURCE)])
            forwards_after_first = \
                service.cache_stats()["forwards"]["graphs"]
            with connect(srv.address) as client:
                client.suggest_sources([("a.c", GOOD_SOURCE)])
            stats = service.cache_stats()
        assert stats["forwards"]["graphs"] == forwards_after_first
        assert stats["store"]["suggest_hits"] == 1
