"""Tests for the CLI entry points."""

from pathlib import Path

import pytest

from repro.cli import dataset_main, eval_main, train_main


class TestDatasetCLI:
    def test_generates_and_saves(self, tmp_path, capsys):
        out = tmp_path / "ds.jsonl"
        code = dataset_main(["--scale", "0.005", "--out", str(out)])
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "wrote" in text and "pragma_type" in text

    def test_no_synthetic_flag(self, tmp_path):
        out = tmp_path / "ds.jsonl"
        dataset_main(["--scale", "0.005", "--no-synthetic", "--out", str(out)])
        from repro.dataset import load_jsonl
        samples = load_jsonl(out)
        assert all(s.origin == "github" for s in samples)


class TestTrainCLI:
    def test_trains_and_reports(self, tmp_path, capsys):
        weights = tmp_path / "m.npz"
        code = train_main([
            "--model", "graph2par", "--scale", "0.005", "--epochs", "1",
            "--dim", "16", "--out", str(weights),
        ])
        assert code == 0
        assert weights.exists()
        assert "accuracy" in capsys.readouterr().out


class TestEvalCLI:
    def test_single_experiment(self, capsys):
        code = eval_main(["table1", "--profile", "fast", "--scale", "0.005"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "paper reported" in out
