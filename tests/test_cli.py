"""Tests for the CLI entry points."""

from pathlib import Path

import pytest

from repro.cli import dataset_main, eval_main, main, train_main


class TestDatasetCLI:
    def test_generates_and_saves(self, tmp_path, capsys):
        out = tmp_path / "ds.jsonl"
        code = dataset_main(["--scale", "0.005", "--out", str(out)])
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "wrote" in text and "pragma_type" in text

    def test_no_synthetic_flag(self, tmp_path):
        out = tmp_path / "ds.jsonl"
        dataset_main(["--scale", "0.005", "--no-synthetic", "--out", str(out)])
        from repro.dataset import load_jsonl
        samples = load_jsonl(out)
        assert all(s.origin == "github" for s in samples)


class TestTrainCLI:
    def test_trains_and_reports(self, tmp_path, capsys):
        weights = tmp_path / "m.npz"
        code = train_main([
            "--model", "graph2par", "--scale", "0.005", "--epochs", "1",
            "--dim", "16", "--out", str(weights),
        ])
        assert code == 0
        assert weights.exists()
        assert "accuracy" in capsys.readouterr().out


class TestBundleCLI:
    """`repro train --bundle-out` → `repro suggest-dir --bundle`.

    The bundle-served path must reproduce the in-process
    (train-on-the-fly) path byte-for-byte, with zero training steps at
    serve time, and a second `--cache-dir` run must do zero model
    forwards.
    """

    FLAGS = ["--scale", "0.005", "--epochs", "1", "--dim", "16"]

    def test_bundle_reproduces_in_process_path(self, tmp_path, capsys,
                                               monkeypatch):
        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "kernel.c").write_text(TestSuggestDirCLI.SOURCE)
        bundle = tmp_path / "bundle"
        assert main(["train", *self.FLAGS,
                     "--bundle-out", str(bundle)]) == 0
        assert (bundle / "manifest.json").exists()

        golden = tmp_path / "golden.json"
        assert main(["suggest-dir", str(src_dir), *self.FLAGS,
                     "--quiet", "--out", str(golden)]) == 0

        # serve from the bundle: training is forbidden from here on
        from repro.train import GraphTrainer

        def boom(*args, **kwargs):
            raise AssertionError("--bundle serving must not train")

        monkeypatch.setattr(GraphTrainer, "fit", boom)
        served = tmp_path / "served.json"
        cache = tmp_path / "cache"
        assert main(["suggest-dir", str(src_dir), "--bundle", str(bundle),
                     "--cache-dir", str(cache), "--quiet",
                     "--out", str(served)]) == 0
        assert served.read_bytes() == golden.read_bytes()

        # warm run: zero model forwards on the unchanged corpus
        warm = tmp_path / "warm.json"
        assert main(["suggest-dir", str(src_dir), "--bundle", str(bundle),
                     "--cache-dir", str(cache), "--quiet",
                     "--out", str(warm)]) == 0
        text = capsys.readouterr().out
        assert "1 files warm, 0 computed (0 graph forwards)" in text
        assert warm.read_bytes() == golden.read_bytes()

    def test_bundle_out_requires_graph2par(self, capsys, tmp_path):
        code = main(["train", "--model", "gcn", *self.FLAGS,
                     "--bundle-out", str(tmp_path / "b")])
        assert code == 2
        assert "graph2par" in capsys.readouterr().err

    def test_suggest_dir_rejects_bad_bundle(self, tmp_path, capsys):
        (tmp_path / "corpus").mkdir()
        (tmp_path / "corpus" / "k.c").write_text(TestSuggestDirCLI.SOURCE)
        code = main(["suggest-dir", str(tmp_path / "corpus"),
                     "--bundle", str(tmp_path / "not-a-bundle")])
        assert code == 2
        assert "cannot load bundle" in capsys.readouterr().err


class TestBundleArchiveCLI:
    """`repro bundle pack/unpack` + serving straight from an archive."""

    FLAGS = ["--scale", "0.005", "--epochs", "1", "--dim", "16"]

    def test_pack_unpack_and_serve_archive(self, tmp_path, capsys):
        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "kernel.c").write_text(TestSuggestDirCLI.SOURCE)
        bundle = tmp_path / "bundle"
        assert main(["train", *self.FLAGS,
                     "--bundle-out", str(bundle)]) == 0
        archive = tmp_path / "advisor.tar.gz"
        assert main(["bundle", "pack", str(bundle), str(archive)]) == 0
        assert archive.is_file()
        unpacked = tmp_path / "unpacked"
        assert main(["bundle", "unpack", str(archive),
                     str(unpacked)]) == 0
        assert (unpacked / "manifest.json").read_bytes() == \
            (bundle / "manifest.json").read_bytes()
        capsys.readouterr()

        golden = tmp_path / "golden.json"
        assert main(["suggest-dir", str(src_dir), "--bundle", str(bundle),
                     "--quiet", "--out", str(golden)]) == 0
        served = tmp_path / "served.json"
        assert main(["suggest-dir", str(src_dir), "--bundle", str(archive),
                     "--quiet", "--out", str(served)]) == 0
        assert served.read_bytes() == golden.read_bytes()

    def test_train_writes_archive_directly(self, tmp_path, capsys):
        archive = tmp_path / "advisor.tgz"
        assert main(["train", *self.FLAGS,
                     "--bundle-out", str(archive)]) == 0
        assert archive.is_file()
        from repro.artifacts import SuggesterBundle

        loaded = SuggesterBundle.load(archive)
        assert loaded.source_path == str(archive)

    def test_pack_rejects_non_bundle(self, tmp_path, capsys):
        (tmp_path / "junk").mkdir()
        code = main(["bundle", "pack", str(tmp_path / "junk"),
                     str(tmp_path / "junk.tar.gz")])
        assert code == 2
        assert "failed" in capsys.readouterr().err


class TestCacheGcCLI:
    def test_gc_prunes_and_reports(self, tmp_path, capsys):
        from repro.serve import SuggestionStore

        store = SuggestionStore(tmp_path / "cache")
        for i in range(4):
            store.put_parse(f"k{i}", {"requests": [], "error": None})
        code = main(["cache", "gc", str(tmp_path / "cache"),
                     "--max-bytes", "0"])
        assert code == 0
        assert "removed 4 entries" in capsys.readouterr().out
        assert not list((tmp_path / "cache").rglob("*.json"))

    def test_gc_requires_a_limit(self, tmp_path, capsys):
        assert main(["cache", "gc", str(tmp_path)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_gc_json_reports_per_layer(self, tmp_path, capsys):
        import json

        from repro.serve import SuggestionStore

        store = SuggestionStore(tmp_path / "cache")
        store.put_parse("p1", {"requests": [], "error": None})
        store.put_suggestions("model", "s1",
                              {"suggestions": [], "error": None})
        code = main(["cache", "gc", str(tmp_path / "cache"),
                     "--max-bytes", "0", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed_files"] == 2
        assert report["layers"]["parse"]["removed_files"] == 1
        assert report["layers"]["suggest"]["removed_files"] == 1
        assert report["layers"]["parse"]["removed_bytes"] > 0
        assert report["kept_files"] == 0

    def test_gc_text_report_names_layers(self, tmp_path, capsys):
        from repro.serve import SuggestionStore

        store = SuggestionStore(tmp_path / "cache")
        store.put_parse("p1", {"requests": [], "error": None})
        assert main(["cache", "gc", str(tmp_path / "cache"),
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 entries" in out
        assert "parse: removed 1" in out

    def test_stats_reports_layers_and_memo(self, tmp_path, capsys):
        from repro.serve import SuggestionStore

        store = SuggestionStore(tmp_path / "cache")
        store.put_parse("k1", {"requests": [], "error": None})
        store.put_suggestions("modelA", "k1",
                              {"suggestions": [], "error": None})
        store.put_suggestions("modelB", "k1",
                              {"suggestions": [], "error": None})
        code = main(["cache", "stats", str(tmp_path / "cache")])
        assert code == 0
        out = capsys.readouterr().out
        assert "parse: 1 entries" in out
        assert "suggest: 2 entries" in out
        assert "2 model fingerprints" in out
        assert "analyze_loop memo" in out

    def test_stats_json_payload(self, tmp_path, capsys):
        import json

        from repro.serve import SuggestionStore

        store = SuggestionStore(tmp_path / "cache")
        store.put_parse("k1", {"requests": [], "error": None})
        assert main(["cache", "stats", str(tmp_path / "cache"),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["store"]["parse"]["entries"] == 1
        assert set(payload["analyze_loop"]) == {"entries", "hits",
                                                "misses"}
        # per-process hit/miss counters would always read zero from a
        # fresh CLI process, so the payload deliberately omits them
        assert "store_counters" not in payload

    def test_stats_on_missing_cache(self, tmp_path, capsys):
        assert main(["cache", "stats", str(tmp_path / "nope")]) == 0
        assert "not created yet" in capsys.readouterr().out

    def test_stats_and_gc_cover_verdict_layer(self, tmp_path, capsys):
        import json

        from repro.serve import SuggestionStore

        store = SuggestionStore(tmp_path / "cache")
        store.put_verdict("v1", {"ok": True, "code": "verified",
                                 "detail": ""})
        assert main(["cache", "stats", str(tmp_path / "cache")]) == 0
        assert "verdict: 1 entries" in capsys.readouterr().out
        assert main(["cache", "stats", str(tmp_path / "cache"),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["store"]["verdict"]["entries"] == 1
        assert main(["cache", "gc", str(tmp_path / "cache"),
                     "--max-bytes", "0", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["layers"]["verdict"]["removed_files"] == 1


class TestSuggestDirCLI:
    SOURCE = """
    double a[64], b[64]; double s;
    void kernel(void) {
        int i;
        for (i = 0; i < 64; i++) a[i] = b[i] * 2.0;
        for (i = 0; i < 64; i++) s += a[i];
    }
    """

    OTHER = """
    double c[32];
    void scale(void) {
        int j;
        for (j = 0; j < 32; j++) c[j] = c[j] + 1.0;
    }
    """

    def test_suggests_over_directory(self, tmp_path, capsys):
        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "kernel.c").write_text(self.SOURCE)
        out = tmp_path / "suggestions.json"
        code = main([
            "suggest-dir", str(src_dir), "--scale", "0.005",
            "--epochs", "1", "--dim", "16", "--quiet",
            "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "2 loops across 1 files" in text
        import json
        payload = json.loads(out.read_text())
        assert len(payload) == 1
        assert len(payload[0]["suggestions"]) == 2

    def test_empty_directory_fails(self, tmp_path, capsys):
        code = main(["suggest-dir", str(tmp_path), "--scale", "0.005",
                     "--epochs", "1", "--dim", "16"])
        assert code == 1
        assert "no files" in capsys.readouterr().out

    def test_sharded_output_is_byte_identical(self, tmp_path, capsys):
        """Acceptance: --shards N matches the single-process path
        byte for byte."""
        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "k1.c").write_text(self.SOURCE)
        (src_dir / "k2.c").write_text(self.OTHER)
        flags = ["--scale", "0.005", "--epochs", "1", "--dim", "16",
                 "--quiet"]
        single = tmp_path / "single.json"
        assert main(["suggest-dir", str(src_dir), *flags,
                     "--shards", "1", "--out", str(single)]) == 0
        sharded = tmp_path / "sharded.json"
        assert main(["suggest-dir", str(src_dir), *flags,
                     "--shards", "4", "--out", str(sharded)]) == 0
        assert sharded.read_bytes() == single.read_bytes()

    def test_shards_auto_is_byte_identical(self, tmp_path, capsys):
        """--shards auto picks a safe count (in-process on this corpus)
        and matches --shards 1 byte for byte."""
        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "k1.c").write_text(self.SOURCE)
        (src_dir / "k2.c").write_text(self.OTHER)
        flags = ["--scale", "0.005", "--epochs", "1", "--dim", "16",
                 "--quiet"]
        single = tmp_path / "single.json"
        assert main(["suggest-dir", str(src_dir), *flags,
                     "--shards", "1", "--out", str(single)]) == 0
        auto = tmp_path / "auto.json"
        assert main(["suggest-dir", str(src_dir), *flags,
                     "--shards", "auto", "--out", str(auto)]) == 0
        assert auto.read_bytes() == single.read_bytes()

    def test_shards_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(["suggest-dir", ".", "--shards", "lots"])
        with pytest.raises(SystemExit):
            main(["suggest-dir", ".", "--shards", "0"])

    def test_stream_emits_ndjson_per_file(self, tmp_path, capsys):
        import json

        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "k1.c").write_text(self.SOURCE)
        (src_dir / "k2.c").write_text(self.OTHER)
        (src_dir / "broken.c").write_text(
            "void broken(void) { for (i = 0; i < ; }"
        )
        code = main(["suggest-dir", str(src_dir), "--scale", "0.005",
                     "--epochs", "1", "--dim", "16", "--stream",
                     "--shards", "2"])
        assert code == 0
        out, err = capsys.readouterr()
        records = [json.loads(line) for line in out.splitlines()]
        # stdout is pure NDJSON: one record per file, then one final
        # summary record marking clean end-of-stream
        done = records.pop()
        assert done["event"] == "done"
        assert done["files"] == 3
        assert done["loops"] == 3
        assert done["errors"] == 1
        assert done["elapsed_s"] >= 0
        assert sorted(r["file"].rsplit("/", 1)[-1] for r in records) == \
            ["broken.c", "k1.c", "k2.c"]
        by_name = {r["file"].rsplit("/", 1)[-1]: r for r in records}
        assert len(by_name["k1.c"]["suggestions"]) == 2
        assert by_name["broken.c"]["error"] is not None
        # the human-readable summary lands on stderr
        assert "3 loops across 3 files" in err


class TestServerCLI:
    """`repro serve` + `repro suggest-dir --server`: the CLI as a thin
    client over the long-lived daemon."""

    FLAGS = ["--scale", "0.005", "--epochs", "1", "--dim", "16"]

    @staticmethod
    def _stub_server():
        import numpy as np

        from repro.serve import SuggestionService, SuggestServer

        class Stub:
            def __init__(self, value):
                self.value = value

            def predict_samples(self, samples):
                return np.full(len(samples), self.value, dtype=int)

        service = SuggestionService(Stub(1), {"reduction": Stub(0)})
        return SuggestServer({"advisor": service})

    def test_server_round_trip_is_byte_identical(self, tmp_path, capsys):
        """Acceptance: --server output matches the in-process path
        byte for byte."""
        import json

        from repro.eval.config import ExperimentConfig
        from repro.eval.context import get_context
        from repro.serve import ServeConfig, SuggestServer, build_service

        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "k1.c").write_text(TestSuggestDirCLI.SOURCE)
        (src_dir / "k2.c").write_text(TestSuggestDirCLI.OTHER)
        golden = tmp_path / "golden.json"
        assert main(["suggest-dir", str(src_dir), *self.FLAGS,
                     "--quiet", "--out", str(golden)]) == 0

        # the daemon serves the same (process-cached) trained models
        ctx = get_context(ExperimentConfig(scale=0.005, seed=7,
                                           epochs=1, dim=16))
        service = build_service(ctx, ServeConfig())
        with SuggestServer({"default": service}).start() as srv:
            served = tmp_path / "served.json"
            assert main(["suggest-dir", str(src_dir),
                         "--server", srv.address,
                         "--quiet", "--out", str(served)]) == 0
            assert served.read_bytes() == golden.read_bytes()

            # --stream through the daemon: NDJSON + final done record
            capsys.readouterr()
            assert main(["suggest-dir", str(src_dir),
                         "--server", srv.address, "--stream"]) == 0
            out, err = capsys.readouterr()
            records = [json.loads(line) for line in out.splitlines()]
            assert records[-1]["event"] == "done"
            assert records[-1]["files"] == 2
            assert "3 loops across 2 files" in err

    def test_server_bundle_name_selected(self, tmp_path, capsys):
        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "k.c").write_text(TestSuggestDirCLI.SOURCE)
        with self._stub_server().start() as srv:
            out = tmp_path / "out.json"
            assert main(["suggest-dir", str(src_dir),
                         "--server", srv.address, "--bundle", "advisor",
                         "--quiet", "--out", str(out)]) == 0
            import json

            payload = json.loads(out.read_text())
            assert len(payload[0]["suggestions"]) == 2

    def test_unknown_server_bundle_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "k.c").write_text(TestSuggestDirCLI.SOURCE)
        with self._stub_server().start() as srv:
            code = main(["suggest-dir", str(tmp_path),
                         "--server", srv.address, "--bundle", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "does not serve bundle" in err
        assert "advisor" in err

    def test_unreachable_server_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "k.c").write_text(TestSuggestDirCLI.SOURCE)
        # a closed ephemeral port: connection refused, not a hang
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(["suggest-dir", str(tmp_path),
                     "--server", f"127.0.0.1:{port}"])
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err

    def test_bad_server_address_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "k.c").write_text(TestSuggestDirCLI.SOURCE)
        code = main(["suggest-dir", str(tmp_path), "--server", "bogus"])
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err

    def test_serve_requires_a_transport(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_rejects_bad_listen_address(self, capsys):
        from repro.cli import serve_main

        assert serve_main(["--listen", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestRewriteDirCLI:
    """`repro rewrite-dir`: suggestions applied as verified rewrites,
    in-process and through the daemon."""

    FLAGS = ["--scale", "0.005", "--epochs", "1", "--dim", "16"]

    SCAN = """
    double p[32];
    void scan(void) {
        int j;
        for (j = 1; j < 32; j++) p[j] = p[j] + p[j - 1];
    }
    """

    def _corpus(self, tmp_path):
        src_dir = tmp_path / "corpus"
        src_dir.mkdir()
        (src_dir / "kernel.c").write_text(TestSuggestDirCLI.SOURCE)
        (src_dir / "scan.c").write_text(self.SCAN)
        return src_dir

    def test_rewrites_over_directory(self, tmp_path, capsys):
        import json

        src_dir = self._corpus(tmp_path)
        out = tmp_path / "rewrites.json"
        code = main(["rewrite-dir", str(src_dir), *self.FLAGS,
                     "--quiet", "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "3 loops across 2 files" in text
        payload = json.loads(out.read_text())
        by_name = {p["file"].rsplit("/", 1)[-1]: p for p in payload}
        # the sum loop gets its synthesized reduction clause...
        kernel = by_name["kernel.c"]
        assert any("reduction(+:s)" in (r["pragma"] or "")
                   for r in kernel["rewrites"])
        assert "#pragma omp parallel for" in kernel["rewritten_source"]
        # ...and the prefix scan never gains a pragma
        scan = by_name["scan.c"]
        assert all(not r["accepted"] for r in scan["rewrites"])
        assert "#pragma" not in scan["rewritten_source"]

    def test_rewritten_sources_reparse(self, tmp_path, capsys):
        import json

        from repro.cfront import parse_source, unparse

        src_dir = self._corpus(tmp_path)
        out = tmp_path / "rewrites.json"
        assert main(["rewrite-dir", str(src_dir), *self.FLAGS,
                     "--quiet", "--out", str(out)]) == 0
        for record in json.loads(out.read_text()):
            assert record["error"] is None
            rewritten = record["rewritten_source"]
            assert unparse(parse_source(rewritten)) == rewritten

    def test_no_verify_skips_the_gate(self, tmp_path, capsys):
        import json

        src_dir = self._corpus(tmp_path)
        out = tmp_path / "rewrites.json"
        assert main(["rewrite-dir", str(src_dir), *self.FLAGS,
                     "--no-verify", "--quiet", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        codes = {r["code"] for p in payload for r in p["rewrites"]}
        assert "verified" not in codes and "divergence" not in codes

    def test_stream_emits_ndjson_with_counts(self, tmp_path, capsys):
        import json

        src_dir = self._corpus(tmp_path)
        code = main(["rewrite-dir", str(src_dir), *self.FLAGS,
                     "--stream"])
        assert code == 0
        out, err = capsys.readouterr()
        records = [json.loads(line) for line in out.splitlines()]
        done = records.pop()
        assert done["event"] == "done"
        assert done["files"] == 2
        assert done["loops"] == 3
        assert done["accepted"] + done["refused"] <= 3
        assert done["errors"] == 0
        # in-process runs surface the verifier's fast-path counters
        assert done["simulations"] > 0
        assert done["verifier"]["compiled_runs"] > 0
        assert "3 loops across 2 files" in err
        assert "verifier:" in err

    def test_warm_cache_dir_skips_simulations(self, tmp_path, capsys):
        import json

        src_dir = self._corpus(tmp_path)
        cache = tmp_path / "cache"
        args = ["rewrite-dir", str(src_dir), *self.FLAGS,
                "--cache-dir", str(cache), "--stream"]
        assert main(args) == 0
        cold = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert cold[-1]["simulations"] > 0
        assert main(args) == 0
        warm = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        # warm contract: zero loop simulations, identical results
        assert warm[-1]["simulations"] == 0
        assert warm[-1]["verifier"]["cached_verdicts"] > 0
        def key(recs):
            return sorted(
                (r["file"], json.dumps(r["rewrites"], sort_keys=True))
                for r in recs[:-1])

        assert key(warm) == key(cold)

    def test_empty_directory_fails(self, tmp_path, capsys):
        code = main(["rewrite-dir", str(tmp_path), *self.FLAGS])
        assert code == 1
        assert "no files" in capsys.readouterr().out

    def test_server_round_trip_is_byte_identical(self, tmp_path, capsys):
        """Acceptance: --server output matches the in-process path
        byte for byte."""
        from repro.eval.config import ExperimentConfig
        from repro.eval.context import get_context
        from repro.serve import ServeConfig, SuggestServer, build_service

        src_dir = self._corpus(tmp_path)
        golden = tmp_path / "golden.json"
        assert main(["rewrite-dir", str(src_dir), *self.FLAGS,
                     "--quiet", "--out", str(golden)]) == 0

        ctx = get_context(ExperimentConfig(scale=0.005, seed=7,
                                           epochs=1, dim=16))
        service = build_service(ctx, ServeConfig())
        with SuggestServer({"default": service}).start() as srv:
            served = tmp_path / "served.json"
            assert main(["rewrite-dir", str(src_dir),
                         "--server", srv.address,
                         "--quiet", "--out", str(served)]) == 0
            assert served.read_bytes() == golden.read_bytes()

            # --no-verify travels the wire too
            unverified = tmp_path / "unverified.json"
            assert main(["rewrite-dir", str(src_dir),
                         "--server", srv.address, "--no-verify",
                         "--quiet", "--out", str(unverified)]) == 0
            assert unverified.read_bytes() != golden.read_bytes()

    def test_unreachable_server_fails_cleanly(self, tmp_path, capsys):
        import socket

        (tmp_path / "k.c").write_text(TestSuggestDirCLI.SOURCE)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(["rewrite-dir", str(tmp_path),
                     "--server", f"127.0.0.1:{port}"])
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err


class TestUmbrellaCLI:
    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_no_arguments_prints_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "suggest-dir" in capsys.readouterr().out


class TestEvalCLI:
    def test_single_experiment(self, capsys):
        code = eval_main(["table1", "--profile", "fast", "--scale", "0.005"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "paper reported" in out
