"""Round-trip and failure-mode tests for persistent model artifacts.

For every model family, ``save → load → predict`` must be
byte-identical, and artifacts with a mismatched format version or
vocabulary hash must fail with a clear error instead of predicting
garbage.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.artifacts import (
    ArtifactError,
    BundleError,
    SuggesterBundle,
    family_of,
    load_trained,
    pack_bundle,
    save_trained,
    unpack_bundle,
)
from repro.cfront import parse_loop
from repro.eval.context import TrainedGraphModel, TrainedTokenModel
from repro.graphs import build_aug_ast, build_graph_vocab, encode_graph
from repro.models import (
    GCNBaseline,
    GCNConfig,
    Graph2Par,
    Graph2ParConfig,
    PragFormer,
    PragFormerConfig,
    RGCNBaseline,
    RGCNConfig,
)
from repro.models.pragformer import (
    build_token_vocab,
    encode_tokens,
    tokenize_loop,
)
from repro.nn import SerializeError
from repro.train import GraphTrainer, TokenTrainer, TrainConfig

LOOPS = [
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 0; i < n; i++) a[i] = b[i] * 2.0;",
    "for (j = 1; j < n; j++) a[j] = a[j - 1] + 1;",
    "for (i = 0; i < n; i++) { t = a[i]; b[i] = t * t; }",
    "for (k = 0; k < m; k++) c[k] = f(a[k]) + b[k];",
]

GRAPH_FAMILIES = {
    "graph2par": (Graph2Par, Graph2ParConfig),
    "gcn": (GCNBaseline, GCNConfig),
    "rgcn": (RGCNBaseline, RGCNConfig),
}


def _graph_fixture(seed: int = 0):
    """A tiny vocab + encoded graphs over the shared loop set."""
    graphs = [build_aug_ast(parse_loop(src)) for src in LOOPS]
    vocab = build_graph_vocab(graphs)
    encoded = [encode_graph(g, vocab) for g in graphs]
    return vocab, encoded


def _trained_graph(family: str, seed: int = 0) -> TrainedGraphModel:
    """An (untrained, seeded-random) wrapper of one graph family."""
    vocab, _ = _graph_fixture()
    model_cls, config_cls = GRAPH_FAMILIES[family]
    model = model_cls(vocab, config_cls(dim=16, layers=1, seed=seed))
    return TrainedGraphModel(
        trainer=GraphTrainer(model, TrainConfig(epochs=1, seed=seed)),
        vocab=vocab, representation="aug", task="parallel",
    )


def _trained_token(seed: int = 0) -> TrainedTokenModel:
    seqs = [tokenize_loop(src) for src in LOOPS]
    vocab = build_token_vocab(seqs)
    model = PragFormer(vocab, PragFormerConfig(dim=16, heads=2, layers=1,
                                               seed=seed))
    return TrainedTokenModel(
        trainer=TokenTrainer(model, TrainConfig(epochs=1, seed=seed)),
        vocab=vocab, task="parallel", max_len=128,
    )


def _logits(trained: TrainedGraphModel, encoded) -> np.ndarray:
    from repro.graphs import collate
    from repro.nn.tensor import no_grad

    trained.trainer.model.eval()
    with no_grad():
        return trained.trainer.model(collate(encoded)).data.copy()


class TestGraphRoundTrips:
    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    def test_save_load_predict_identical(self, family, tmp_path):
        vocab, encoded = _graph_fixture()
        trained = _trained_graph(family, seed=3)
        save_trained(trained, tmp_path / family)
        loaded = load_trained(tmp_path / family)

        assert family_of(loaded.trainer.model) == family
        assert loaded.task == trained.task
        assert loaded.representation == trained.representation
        assert loaded.vocab.content_hash() == vocab.content_hash()
        # weights byte-identical, not merely close
        original = trained.trainer.model.state_dict()
        restored = loaded.trainer.model.state_dict()
        assert sorted(original) == sorted(restored)
        for name in original:
            assert original[name].tobytes() == restored[name].tobytes()
        # and therefore logits + predictions byte-identical
        assert _logits(trained, encoded).tobytes() == \
            _logits(loaded, encoded).tobytes()
        assert np.array_equal(trained.trainer.predict(encoded),
                              loaded.trainer.predict(encoded))
        assert trained.fingerprint() == loaded.fingerprint()

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_hgt_round_trip_any_seed(self, seed, tmp_path_factory):
        """Property: round trip holds for arbitrary initialisations."""
        tmp = tmp_path_factory.mktemp("rt")
        _, encoded = _graph_fixture()
        trained = _trained_graph("graph2par", seed=seed)
        save_trained(trained, tmp / "m")
        loaded = load_trained(tmp / "m")
        assert _logits(trained, encoded).tobytes() == \
            _logits(loaded, encoded).tobytes()

    def test_train_config_survives(self, tmp_path):
        trained = _trained_graph("gcn")
        trained.trainer.config = TrainConfig(epochs=9, lr=0.5, seed=13)
        save_trained(trained, tmp_path / "m")
        loaded = load_trained(tmp_path / "m")
        assert loaded.trainer.config == trained.trainer.config


class TestTokenRoundTrip:
    def test_pragformer_save_load_predict_identical(self, tmp_path):
        trained = _trained_token(seed=5)
        seqs = [tokenize_loop(src) for src in LOOPS]
        ids, mask = encode_tokens(seqs, trained.vocab, trained.max_len)
        save_trained(trained, tmp_path / "pf")
        loaded = load_trained(tmp_path / "pf")
        assert family_of(loaded.trainer.model) == "pragformer"
        assert loaded.max_len == trained.max_len
        original = trained.trainer.model.state_dict()
        restored = loaded.trainer.model.state_dict()
        assert sorted(original) == sorted(restored)
        for name in original:
            assert original[name].tobytes() == restored[name].tobytes()
        assert np.array_equal(trained.trainer.predict(ids, mask),
                              loaded.trainer.predict(ids, mask))


class TestFailureModes:
    def test_format_version_mismatch_is_clear(self, tmp_path):
        trained = _trained_graph("graph2par")
        save_trained(trained, tmp_path / "m")
        meta_path = tmp_path / "m" / "model.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ArtifactError, match="format version"):
            load_trained(tmp_path / "m")

    def test_vocab_hash_mismatch_is_clear(self, tmp_path):
        trained = _trained_graph("graph2par")
        save_trained(trained, tmp_path / "m")
        # swap in a different (smaller) vocabulary
        other = build_graph_vocab(
            [build_aug_ast(parse_loop(LOOPS[0]))]
        )
        (tmp_path / "m" / "vocab.json").write_text(
            json.dumps(other.to_dict())
        )
        with pytest.raises(ArtifactError, match="[Vv]ocab"):
            load_trained(tmp_path / "m")

    def test_missing_directory_is_clear(self, tmp_path):
        with pytest.raises(ArtifactError, match="missing"):
            load_trained(tmp_path / "nope")

    def test_truncated_weights_are_clear(self, tmp_path):
        trained = _trained_graph("gcn")
        save_trained(trained, tmp_path / "m")
        weights = tmp_path / "m" / "weights.npz"
        data = weights.read_bytes()
        weights.write_bytes(data[: len(data) // 2])
        with pytest.raises(SerializeError, match="cannot read"):
            load_trained(tmp_path / "m")

    def test_unregistered_model_has_no_family(self):
        from repro.nn import Linear

        with pytest.raises(ArtifactError, match="family"):
            family_of(Linear(4, 2))


class TestSuggesterBundle:
    def _bundle(self, seed: int = 0) -> SuggesterBundle:
        vocab, _ = _graph_fixture()

        def trained(task, s):
            model = Graph2Par(vocab, Graph2ParConfig(dim=16, layers=1,
                                                     seed=s))
            return TrainedGraphModel(
                trainer=GraphTrainer(model, TrainConfig(seed=s)),
                vocab=vocab, representation="aug", task=task,
            )

        return SuggesterBundle(
            parallel=trained("parallel", seed),
            clause_models={
                "reduction": trained("reduction", seed + 1),
                "private": trained("private", seed + 2),
            },
            experiment={"scale": 0.005},
        )

    def test_round_trip_predictions(self, tmp_path):
        _, encoded = _graph_fixture()
        bundle = self._bundle(seed=11)
        bundle.save(tmp_path / "b")
        loaded = SuggesterBundle.load(tmp_path / "b")
        assert sorted(loaded.clause_models) == \
            sorted(bundle.clause_models)
        assert loaded.experiment == bundle.experiment
        assert np.array_equal(
            bundle.parallel.trainer.predict(encoded),
            loaded.parallel.trainer.predict(encoded),
        )
        for name, model in bundle.clause_models.items():
            assert np.array_equal(
                model.trainer.predict(encoded),
                loaded.clause_models[name].trainer.predict(encoded),
            )
        # all loaded models share the single bundle vocabulary object
        assert loaded.parallel.vocab is loaded.clause_models["private"].vocab

    def test_manifest_version_mismatch(self, tmp_path):
        bundle = self._bundle()
        bundle.save(tmp_path / "b")
        manifest = tmp_path / "b" / "manifest.json"
        meta = json.loads(manifest.read_text())
        meta["format_version"] = 0
        manifest.write_text(json.dumps(meta))
        with pytest.raises(BundleError, match="format version"):
            SuggesterBundle.load(tmp_path / "b")

    def test_tampered_vocab_rejected(self, tmp_path):
        bundle = self._bundle()
        bundle.save(tmp_path / "b")
        other = build_graph_vocab([build_aug_ast(parse_loop(LOOPS[1]))])
        (tmp_path / "b" / "vocab.json").write_text(
            json.dumps(other.to_dict())
        )
        with pytest.raises(BundleError, match="vocab"):
            SuggesterBundle.load(tmp_path / "b")

    def test_not_a_bundle(self, tmp_path):
        with pytest.raises(BundleError):
            SuggesterBundle.load(tmp_path)

    def test_mixed_vocab_save_rejected(self, tmp_path):
        bundle = self._bundle()
        other_vocab = build_graph_vocab(
            [build_aug_ast(parse_loop(LOOPS[0]))]
        )
        model = Graph2Par(other_vocab, Graph2ParConfig(dim=16, layers=1))
        bundle.clause_models["simd"] = TrainedGraphModel(
            trainer=GraphTrainer(model, TrainConfig()),
            vocab=other_vocab, representation="aug", task="simd",
        )
        with pytest.raises(BundleError, match="vocabulary"):
            bundle.save(tmp_path / "b")

    def test_build_service_runs_without_training(self, tmp_path,
                                                 monkeypatch):
        bundle = self._bundle()
        bundle.save(tmp_path / "b")
        loaded = SuggesterBundle.load(tmp_path / "b")

        def boom(*args, **kwargs):  # noqa: ANN002
            raise AssertionError("bundle serving must not train")

        monkeypatch.setattr(GraphTrainer, "fit", boom)
        service = loaded.build_service()
        results = service.suggest_sources([(
            "k.c",
            "void f(void) { int i; double s, a[8];"
            " for (i = 0; i < 8; i++) s += a[i]; }",
        )])
        assert len(results) == 1
        assert results[0].error is None
        assert len(results[0].suggestions) == 1

    def test_build_service_clause_subset(self, tmp_path):
        from repro.serve import build_service

        bundle = self._bundle()
        service = build_service(bundle, clauses=("reduction",))
        assert sorted(service.suggester.clause_models) == ["reduction"]
        with pytest.raises(ValueError, match="no clause model"):
            build_service(bundle, clauses=("simd",))


class TestBundleArchive:
    """One archive file ⇄ one bundle directory, predictions identical."""

    def _bundle(self, seed: int = 0) -> SuggesterBundle:
        return TestSuggesterBundle._bundle(self, seed)

    def test_export_archive_round_trip(self, tmp_path):
        _, encoded = _graph_fixture()
        bundle = self._bundle(seed=17)
        archive = bundle.export_archive(tmp_path / "advisor.tar.gz")
        assert archive.is_file()
        loaded = SuggesterBundle.load(archive)
        assert loaded.source_path == str(archive)
        assert sorted(loaded.clause_models) == sorted(bundle.clause_models)
        assert np.array_equal(
            bundle.parallel.trainer.predict(encoded),
            loaded.parallel.trainer.predict(encoded),
        )
        assert bundle.parallel.fingerprint() == \
            loaded.parallel.fingerprint()

    def test_pack_unpack_round_trip(self, tmp_path):
        import tarfile

        bundle = self._bundle(seed=23)
        bundle.save(tmp_path / "dir")
        archive = pack_bundle(tmp_path / "dir", tmp_path / "b.tar.gz")
        with tarfile.open(archive) as tar:
            names = tar.getnames()
        assert len(names) == len(set(names)), "duplicate tar members"
        unpack_bundle(archive, tmp_path / "again")
        # every file of the layout survives byte-for-byte
        originals = sorted(p.relative_to(tmp_path / "dir")
                           for p in (tmp_path / "dir").rglob("*")
                           if p.is_file())
        restored = sorted(p.relative_to(tmp_path / "again")
                          for p in (tmp_path / "again").rglob("*")
                          if p.is_file())
        assert restored == originals
        for rel in originals:
            assert (tmp_path / "again" / rel).read_bytes() == \
                (tmp_path / "dir" / rel).read_bytes()
        # and the unpacked directory loads like the original
        loaded = SuggesterBundle.load(tmp_path / "again")
        assert loaded.vocab.content_hash() == bundle.vocab.content_hash()

    def test_load_records_directory_source_path(self, tmp_path):
        bundle = self._bundle()
        bundle.save(tmp_path / "b")
        loaded = SuggesterBundle.load(tmp_path / "b")
        assert loaded.source_path == str(tmp_path / "b")

    def test_pack_refuses_non_bundle_directory(self, tmp_path):
        (tmp_path / "junk").mkdir()
        with pytest.raises(BundleError, match="manifest"):
            pack_bundle(tmp_path / "junk", tmp_path / "junk.tar.gz")

    def test_unpack_refuses_unsafe_members(self, tmp_path):
        import tarfile

        evil = tmp_path / "evil.tar.gz"
        payload = tmp_path / "payload"
        payload.write_text("{}")
        with tarfile.open(evil, "w:gz") as tar:
            tar.add(payload, arcname="../escape.json")
        with pytest.raises(BundleError, match="unsafe"):
            unpack_bundle(evil, tmp_path / "out")

    def test_unpack_refuses_non_archives(self, tmp_path):
        not_tar = tmp_path / "nope.tar.gz"
        not_tar.write_text("just text")
        with pytest.raises(BundleError, match="cannot read"):
            unpack_bundle(not_tar, tmp_path / "out")

    def test_load_archive_verifies_like_directory(self, tmp_path):
        """Tampering inside the archive fails exactly like a tampered
        directory — the hash checks run on the extracted tree."""
        import tarfile

        bundle = self._bundle()
        bundle.save(tmp_path / "dir")
        other = build_graph_vocab([build_aug_ast(parse_loop(LOOPS[1]))])
        (tmp_path / "dir" / "vocab.json").write_text(
            json.dumps(other.to_dict())
        )
        archive = tmp_path / "tampered.tar.gz"
        with tarfile.open(archive, "w:gz") as tar:
            for member in sorted((tmp_path / "dir").rglob("*")):
                tar.add(member,
                        arcname=str(member.relative_to(tmp_path / "dir")))
        with pytest.raises(BundleError, match="vocab"):
            SuggesterBundle.load(archive)
