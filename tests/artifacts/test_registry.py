"""Tests for the named bundle registry behind ``repro serve``."""

import pytest

from repro.artifacts import (
    ArtifactError,
    BundleRegistry,
    SuggesterBundle,
    bundle_name_from_path,
    parse_bundle_spec,
)
from repro.cfront import parse_loop
from repro.eval.context import TrainedGraphModel
from repro.graphs import build_aug_ast, build_graph_vocab
from repro.models import Graph2Par, Graph2ParConfig
from repro.train import GraphTrainer, TrainConfig

LOOPS = [
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 0; i < n; i++) a[i] = b[i] * 2.0;",
]


def _bundle(seed: int = 0) -> SuggesterBundle:
    graphs = [build_aug_ast(parse_loop(src)) for src in LOOPS]
    vocab = build_graph_vocab(graphs)

    def trained(task):
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, layers=1,
                                                 seed=seed))
        return TrainedGraphModel(
            trainer=GraphTrainer(model, TrainConfig(epochs=1, seed=seed)),
            vocab=vocab, representation="aug", task=task,
        )

    return SuggesterBundle(parallel=trained("parallel"),
                           clause_models={"reduction": trained("reduction")})


class TestNaming:
    def test_name_from_directory_path(self):
        assert bundle_name_from_path("models/advisor") == "advisor"

    def test_name_strips_archive_suffixes(self):
        assert bundle_name_from_path("x/advisor.tar.gz") == "advisor"
        assert bundle_name_from_path("advisor.tgz") == "advisor"
        assert bundle_name_from_path("advisor.tar") == "advisor"

    def test_spec_with_explicit_name(self):
        assert parse_bundle_spec("prod=models/advisor.tar.gz") == \
            ("prod", "models/advisor.tar.gz")

    def test_bare_spec_derives_name(self):
        assert parse_bundle_spec("models/advisor.tgz") == \
            ("advisor", "models/advisor.tgz")

    def test_path_like_prefix_is_not_a_name(self):
        name, path = parse_bundle_spec("some/dir=weird/advisor")
        assert path == "some/dir=weird/advisor"


class TestRegistry:
    def test_first_registered_is_default(self, tmp_path):
        a = tmp_path / "alpha"
        b = tmp_path / "beta"
        _bundle(0).save(a)
        _bundle(1).save(b)
        registry = BundleRegistry.from_specs([str(a), str(b)])
        assert registry.names() == ["alpha", "beta"]
        assert registry.default == "alpha"
        assert registry.get(None) is registry.get("alpha")
        assert "beta" in registry
        assert len(registry) == 2

    def test_unknown_name_lists_available(self, tmp_path):
        path = tmp_path / "alpha"
        _bundle().save(path)
        registry = BundleRegistry.from_specs([str(path)])
        with pytest.raises(KeyError, match="alpha"):
            registry.get("nope")

    def test_empty_registry_has_no_default(self):
        with pytest.raises(KeyError):
            BundleRegistry().get(None)

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "alpha"
        _bundle().save(path)
        with pytest.raises(ValueError, match="twice"):
            BundleRegistry.from_specs([str(path), str(path)])

    def test_loads_strictly_at_registration(self, tmp_path):
        with pytest.raises(ArtifactError):
            BundleRegistry.from_specs([str(tmp_path / "missing")])

    def test_explicit_names_disambiguate(self, tmp_path):
        a = tmp_path / "advisor-a" / "advisor"
        b = tmp_path / "advisor-b" / "advisor"
        _bundle(0).save(a)
        _bundle(1).save(b)
        registry = BundleRegistry.from_specs(
            [f"a={a}", f"b={b}"])
        assert registry.names() == ["a", "b"]
