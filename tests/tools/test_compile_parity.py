"""Property-based parity: compiled loop execution vs the tree-walker.

:mod:`repro.tools.compile` lowers a loop to Python closures that share
the interpreter's memory model; the verifier trusts it to be *bit-
identical* to :class:`~repro.tools.interp.Interpreter` — traces,
observable memory, step accounting, and both refusal exceptions.  This
suite checks that equivalence property over the same generative grammar
the models train on (:class:`~repro.dataset.recipes.RecipeGenerator`),
plus the fallback paths that must degrade to the tree-walker rather
than to a wrong answer.
"""

import math

import pytest

from repro.cfront import parse_loop
from repro.dataset.recipes import RecipeGenerator
from repro.rewrite import PlanError, VerifyConfig, plan_clauses, verify_loop
from repro.tools.compile import (
    CompileUnavailable,
    compile_cache_stats,
    compile_loop,
)
from repro.tools.interp import (
    ExecutionBudgetExceeded,
    Interpreter,
    UnsupportedConstruct,
)

CATEGORIES = ["reduction", "private", "simd", "parallel", "target", None]
SEEDS = range(6)
CASES = [(category, seed) for category in CATEGORIES for seed in SEEDS]

MAX_STEPS = 60_000


def _loop(category, seed):
    recipe = RecipeGenerator(seed=seed).generate(category)
    return parse_loop(recipe.body)


def _interp(seed=0, max_steps=MAX_STEPS):
    return Interpreter(max_steps=max_steps, array_extent=16, max_trip=10,
                       seed=seed)


def _run_interpreted(loop, seed=0, max_steps=MAX_STEPS):
    interp = _interp(seed, max_steps)
    trace = interp.run_loop(loop)
    return trace, interp


def _run_compiled(compiled, loop, seed=0, max_steps=MAX_STEPS):
    interp = _interp(seed, max_steps)
    interp.prepare(loop)
    compiled.run(interp, traced=True)
    return interp.trace, interp


def _memory_state(interp):
    return {
        name: [interp.memory.cells[base + off].value
               for off in range(math.prod(shape) if shape else 1)]
        for name, (base, shape) in interp.memory.bases.items()
    }


@pytest.mark.parametrize("category,seed", CASES)
def test_compiled_matches_interpreter(category, seed):
    """Traces, memory, and step counts are bit-identical — or both
    paths refuse with the same exception type and message."""
    loop = _loop(category, seed)
    compiled = compile_loop(loop)
    if compiled is None:         # unsupported shape: tree-walker owns it
        pytest.skip("loop not compilable; fallback path covers it")
    for interp_seed in (0, 1):
        ref_exc = got_exc = None
        try:
            ref_trace, ref = _run_interpreted(loop, interp_seed)
        except (UnsupportedConstruct, ExecutionBudgetExceeded) as exc:
            ref_exc = exc
        try:
            got_trace, got = _run_compiled(compiled, loop, interp_seed)
        except (UnsupportedConstruct, ExecutionBudgetExceeded) as exc:
            got_exc = exc
        if ref_exc is not None or got_exc is not None:
            assert type(ref_exc) is type(got_exc)
            assert str(ref_exc) == str(got_exc)
            continue
        assert got_trace.events == ref_trace.events
        assert got_trace.iterations == ref_trace.iterations
        assert got_trace.names == ref_trace.names
        assert got_trace.scalar_bases == ref_trace.scalar_bases
        assert _memory_state(got) == _memory_state(ref)
        assert got.steps == ref.steps


@pytest.mark.parametrize("max_steps", [5, 17, 63, 400])
@pytest.mark.parametrize("seed", [0, 3, 5])
def test_budget_refusal_parity(seed, max_steps):
    """Tight budgets refuse identically: same exception, same step at
    which the budget check fires, same message."""
    loop = _loop(None, seed)
    compiled = compile_loop(loop)
    if compiled is None:
        pytest.skip("loop not compilable")
    ref_exc = got_exc = None
    try:
        _run_interpreted(loop, max_steps=max_steps)
    except (UnsupportedConstruct, ExecutionBudgetExceeded) as exc:
        ref_exc = exc
    try:
        _run_compiled(compiled, loop, max_steps=max_steps)
    except (UnsupportedConstruct, ExecutionBudgetExceeded) as exc:
        got_exc = exc
    assert type(ref_exc) is type(got_exc)
    assert str(ref_exc) == str(got_exc)


def test_unknown_call_refusal_parity():
    loop = parse_loop(
        "for (i = 0; i < n; i++) { a[i] = mystery(a[i]); }")
    compiled = compile_loop(loop)
    assert compiled is not None
    with pytest.raises(UnsupportedConstruct) as ref:
        _run_interpreted(loop)
    with pytest.raises(UnsupportedConstruct) as got:
        _run_compiled(compiled, loop)
    assert str(got.value) == str(ref.value)
    assert "mystery" in str(got.value)


def test_run_body_executes_one_iteration():
    loop = parse_loop("for (i = 0; i < n; i++) { s = s + a[i]; }")
    compiled = compile_loop(loop)
    assert compiled is not None
    interp = _interp()
    interp.prepare(loop)
    i_addr = interp.memory.address_of("i")
    s_addr = interp.memory.address_of("s")
    a_base, _ = interp.memory.bases["a"]
    interp.memory.write(s_addr, 0.0)
    interp.memory.write(i_addr, 2)
    compiled.run_body(interp)
    assert interp.memory.read(s_addr) == interp.memory.read(a_base + 2)
    # trace elision: the untraced body records no access events
    assert interp.trace.events == []


def test_compile_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_LOOP_COMPILE", "1")
    loop = parse_loop("for (i = 0; i < n; i++) { a[i] = i; }")
    assert compile_loop(loop) is None


def test_non_for_loop_falls_back():
    loop = parse_loop("while (i < n) { i = i + 1; }")
    assert compile_loop(loop) is None


def test_compilation_is_memoized():
    source = "for (i = 0; i < n; i++) { a[i] = a[i] * 2; }"
    first = compile_loop(parse_loop(source))
    before = compile_cache_stats()
    second = compile_loop(parse_loop(source))
    after = compile_cache_stats()
    assert second is first       # re-parsed copy reuses the code objects
    assert after["hits"] == before["hits"] + 1


def test_unallocated_memory_raises_compile_unavailable():
    """run() on an unprepared interpreter refuses *before* touching
    state, so the verifier can fall back cleanly."""
    loop = parse_loop("for (i = 0; i < n; i++) { a[i] = i; }")
    compiled = compile_loop(loop)
    assert compiled is not None
    interp = _interp()           # no prepare(): nothing allocated
    with pytest.raises(CompileUnavailable):
        compiled.run(interp, traced=False)
    assert interp.steps == 0
    assert not interp.memory.bases


@pytest.mark.parametrize("category,seed",
                         [(c, s) for c in CATEGORIES for s in range(3)])
def test_verdict_parity_compiled_vs_interpreted(category, seed):
    """The whole verifier produces byte-identical verdicts through
    either execution path — the property that lets both share one
    verdict-cache entry."""
    body = RecipeGenerator(seed=seed).generate(category).body
    loop = parse_loop(body)
    try:
        plan = plan_clauses(loop, frozenset())
    except PlanError:
        pytest.skip("planner refuses this loop before verification")
    compiled_v = verify_loop(loop, plan, VerifyConfig(compiled=True))
    # fresh parse: verification mutates no state, but keep paths honest
    loop2 = parse_loop(body)
    interpreted_v = verify_loop(loop2, plan_clauses(loop2, frozenset()),
                                VerifyConfig(compiled=False))
    assert compiled_v == interpreted_v
