"""Tests for affine analysis and dependence tests."""

import pytest

from repro.cfront.parser import Parser
from repro.cfront.lexer import Lexer
from repro.tools.affine import (
    Affine,
    affine_pair_dependent,
    gcd_test,
    strong_siv_has_cross_iteration,
    to_affine,
    ziv_test,
)


def expr(src):
    toks = Lexer(src).lex().tokens
    return Parser(toks)._parse_expr()


def aff(src, loop_vars={"i", "j"}):
    return to_affine(expr(src), set(loop_vars))


class TestToAffine:
    def test_constant(self):
        a = aff("5")
        assert a.is_constant and a.const == 5

    def test_loop_var(self):
        a = aff("i")
        assert a.coeff("i") == 1 and a.const == 0

    def test_linear_combination(self):
        a = aff("2*i + 3*j - 4")
        assert a.coeff("i") == 2 and a.coeff("j") == 3 and a.const == -4

    def test_constant_on_left(self):
        a = aff("3 * i")
        assert a.coeff("i") == 3

    def test_unary_minus(self):
        a = aff("-i + 1")
        assert a.coeff("i") == -1 and a.const == 1

    def test_subtraction(self):
        a = aff("i - 1")
        assert a.coeff("i") == 1 and a.const == -1

    def test_symbolic_invariant(self):
        a = aff("i + n")
        assert a.coeff("i") == 1
        assert a.symbols == (("n", 1),)

    def test_symbol_cancellation(self):
        a = aff("n - n + i")
        assert a.symbols == () and a.coeff("i") == 1

    def test_nonaffine_product(self):
        assert aff("i * j") is None

    def test_nonaffine_division(self):
        assert aff("i / 2") is None

    def test_nonaffine_call(self):
        assert aff("f(i)") is None

    def test_nonaffine_indexed(self):
        assert aff("b[i]") is None

    def test_coefficient_accumulation(self):
        a = aff("i + i + i")
        assert a.coeff("i") == 3

    def test_zero_coefficient_dropped(self):
        a = aff("i - i")
        assert a.is_constant


class TestDependenceTests:
    def test_ziv_equal_constants(self):
        assert ziv_test(Affine(const=3), Affine(const=3))

    def test_ziv_different_constants(self):
        assert not ziv_test(Affine(const=3), Affine(const=4))

    def test_ziv_symbols_matter(self):
        a = Affine(const=0, symbols=(("n", 1),))
        b = Affine(const=0)
        assert not ziv_test(a, b)

    def test_gcd_no_solution(self):
        # 2i = 2i' + 1 has no integer solution
        a = Affine(coeffs={"i": 2})
        b = Affine(coeffs={"i": 2}, const=1)
        assert not gcd_test(a, b)

    def test_gcd_solution_exists(self):
        a = Affine(coeffs={"i": 2})
        b = Affine(coeffs={"i": 4}, const=2)
        assert gcd_test(a, b)

    def test_gcd_multivariable_compensation(self):
        # j vs j-1: another index can compensate, dependence possible.
        a = Affine(coeffs={"j": 1})
        b = Affine(coeffs={"j": 1}, const=-1)
        assert gcd_test(a, b)

    def test_strong_siv_refuses_multivariable(self):
        a = Affine(coeffs={"i": 2, "j": 1})
        b = Affine(coeffs={"i": 2, "j": 1})
        assert strong_siv_has_cross_iteration(a, b, "i") is None

    def test_strong_siv_same_subscript_not_carried(self):
        a = Affine(coeffs={"i": 1})
        assert strong_siv_has_cross_iteration(a, a, "i") is False

    def test_strong_siv_distance_one_carried(self):
        a = Affine(coeffs={"i": 1})
        b = Affine(coeffs={"i": 1}, const=1)
        assert strong_siv_has_cross_iteration(a, b, "i") is True

    def test_strong_siv_fractional_distance_independent(self):
        a = Affine(coeffs={"i": 2})
        b = Affine(coeffs={"i": 2}, const=1)
        assert strong_siv_has_cross_iteration(a, b, "i") is False

    def test_strong_siv_not_applicable_different_coeffs(self):
        a = Affine(coeffs={"i": 1})
        b = Affine(coeffs={"i": 2})
        assert strong_siv_has_cross_iteration(a, b, "i") is None


class TestPairDependence:
    def test_identical_subscripts_independent(self):
        a = aff("i")
        assert not affine_pair_dependent(a, a, "i")

    def test_shifted_subscript_dependent(self):
        assert affine_pair_dependent(aff("i"), aff("i + 1"), "i")

    def test_same_symbolic_offset_independent(self):
        assert not affine_pair_dependent(aff("i + n"), aff("i + n"), "i")

    def test_different_symbols_conservative(self):
        assert affine_pair_dependent(aff("i + n"), aff("i + m"), "i")

    def test_constant_pair_same_cell(self):
        assert affine_pair_dependent(aff("0"), aff("0"), "i")

    def test_constant_pair_distinct_cells(self):
        assert not affine_pair_dependent(aff("0"), aff("1"), "i")
