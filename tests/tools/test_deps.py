"""Tests for the static dependence analysis."""

import pytest

from repro.cfront import parse_loop
from repro.tools.access import collect_accesses
from repro.tools import deps as deps_module
from repro.tools.deps import analyze_loop, cache_stats, clear_cache


def deps(src):
    return analyze_loop(parse_loop(src))


class TestAnalyzeLoopMemo:
    """analyze_loop memoizes by structural loop hash."""

    def test_identical_structure_shares_one_analysis(self):
        clear_cache()
        first = analyze_loop(parse_loop("for (i = 0; i < n; i++) s += a[i];"))
        # a fresh parse of the same loop, modulo formatting
        second = analyze_loop(
            parse_loop("for (i = 0; i < n; i++)   s  +=  a[i] ;")
        )
        assert second is first
        assert cache_stats()["hits"] == 1
        assert cache_stats()["misses"] == 1

    def test_flag_is_part_of_the_key(self):
        clear_cache()
        loop = parse_loop("for (i = 0; i < n; i++) { if (c) s += a[i]; }")
        plain = analyze_loop(loop)
        widened = analyze_loop(loop, conditional_reductions=True)
        assert plain is not widened
        assert not plain.reductions
        assert [r.var for r in widened.reductions] == ["s"]

    def test_distinct_loops_miss(self):
        clear_cache()
        analyze_loop(parse_loop("for (i = 0; i < n; i++) a[i] = b[i];"))
        analyze_loop(parse_loop("for (i = 0; i < n; i++) a[i] = c[i];"))
        assert cache_stats() == {"hits": 0, "misses": 2, "entries": 2}

    def test_memoized_equals_fresh(self):
        sources = [
            "for (i = 0; i < n; i++) s += a[i];",
            "for (i = 0; i < n; i++) a[i] = a[i - 1];",
            "for (i = 0; i < n; i++) { t = a[i]; b[i] = t * t; }",
        ]
        for src in sources:
            clear_cache()
            fresh = deps_module._analyze_loop_uncached(parse_loop(src), False)
            memo = analyze_loop(parse_loop(src))
            assert memo.is_doall() == fresh.is_doall()
            assert [r.var for r in memo.reductions] == \
                [r.var for r in fresh.reductions]
            assert memo.privatizable == fresh.privatizable
            assert len(memo.array_deps) == len(fresh.array_deps)

    def test_capacity_is_bounded(self):
        clear_cache()
        old_max = deps_module._DEPS_CACHE_MAX
        deps_module._DEPS_CACHE_MAX = 4
        try:
            for k in range(8):
                analyze_loop(
                    parse_loop(f"for (i = 0; i < {k + 1}; i++) s += a[i];")
                )
            assert cache_stats()["entries"] == 4
        finally:
            deps_module._DEPS_CACHE_MAX = old_max
            clear_cache()


class TestAccessCollection:
    def test_read_write_classification(self):
        loop = parse_loop("for (i = 0; i < n; i++) a[i] = b[i] + c;")
        summary = collect_accesses(loop.body)
        assert {a.base for a in summary.writes()} == {"a"}
        assert {"b", "c", "i"} <= {a.base for a in summary.reads()}

    def test_compound_assign_reads_and_writes(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += a[i];")
        summary = collect_accesses(loop.body)
        assert len(summary.writes("s")) == 1
        assert len(summary.reads("s")) == 1

    def test_incdec_reads_and_writes(self):
        loop = parse_loop("for (i = 0; i < n; i++) counter++;")
        summary = collect_accesses(loop.body)
        assert len(summary.writes("counter")) == 1
        assert len(summary.reads("counter")) == 1

    def test_subscripts_recorded(self):
        loop = parse_loop("for (i = 0; i < n; i++) a[i][j] = 0;")
        summary = collect_accesses(loop.body)
        w = summary.writes("a")[0]
        assert len(w.subscripts) == 2

    def test_member_arrow_inexact(self):
        loop = parse_loop("for (i = 0; i < n; i++) p->x = i;")
        summary = collect_accesses(loop.body)
        assert not summary.writes("p")[0].exact

    def test_pointer_deref_inexact(self):
        loop = parse_loop("for (i = 0; i < n; i++) *p = i;")
        summary = collect_accesses(loop.body)
        assert not summary.writes("p")[0].exact

    def test_calls_recorded(self):
        loop = parse_loop("for (i = 0; i < n; i++) a[i] = f(b[i]);")
        summary = collect_accesses(loop.body)
        assert summary.has_calls

    def test_address_of_arg_is_unknown_write(self):
        loop = parse_loop("for (i = 0; i < n; i++) update(&x);")
        summary = collect_accesses(loop.body)
        assert any(a.is_write and a.base == "x" for a in summary.accesses)

    def test_local_decl_tracked(self):
        loop = parse_loop("for (i = 0; i < n; i++) { int t = a[i]; b[i] = t; }")
        summary = collect_accesses(loop.body)
        assert "t" in summary.local_decls

    def test_conditional_flag(self):
        loop = parse_loop("for (i = 0; i < n; i++) { if (a[i]) t = 1; }")
        summary = collect_accesses(loop.body)
        assert summary.writes("t")[0].conditional

    def test_inner_loop_detected(self):
        loop = parse_loop(
            "for (i = 0; i < n; i++) for (j = 0; j < n; j++) s += 1;"
        )
        summary = collect_accesses(loop.body)
        assert summary.has_inner_loop


class TestScalarClassification:
    def test_single_statement_reduction(self):
        d = deps("for (i = 0; i < n; i++) s += a[i];")
        assert [r.var for r in d.reductions] == ["s"]
        assert d.reductions[0].op == "+"

    def test_expanded_reduction_form(self):
        d = deps("for (i = 0; i < n; i++) s = s + a[i];")
        assert [r.var for r in d.reductions] == ["s"]

    def test_commuted_reduction_form(self):
        d = deps("for (i = 0; i < n; i++) s = a[i] + s;")
        assert [r.var for r in d.reductions] == ["s"]

    def test_product_reduction(self):
        d = deps("for (i = 0; i < n; i++) p *= a[i];")
        assert d.reductions[0].op == "*"

    def test_counting_reduction(self):
        d = deps("for (i = 0; i < n; i++) count++;")
        assert [r.var for r in d.reductions] == ["count"]

    def test_multi_statement_reduction_listing4(self):
        d = deps("for (int i = 0; i < N; i += step) { v += 2; v = v + step; }")
        assert [r.var for r in d.reductions] == ["v"]
        assert d.reductions[0].statements == 2

    def test_mixed_op_updates_not_reduction(self):
        d = deps("for (i = 0; i < n; i++) { s += a[i]; s *= 2; }")
        assert not d.reductions
        assert "s" in d.shared_scalar_writes

    def test_reduction_var_also_read_elsewhere_disqualified(self):
        d = deps("for (i = 0; i < n; i++) { s += a[i]; b[i] = s; }")
        assert not d.reductions
        assert "s" in d.shared_scalar_writes

    def test_minus_maps_to_plus_family(self):
        d = deps("for (i = 0; i < n; i++) s -= a[i];")
        assert d.reductions and d.reductions[0].op == "+"

    def test_local_decl_private(self):
        d = deps("for (i = 0; i < n; i++) { int t = a[i] * 2; b[i] = t; }")
        assert "t" in d.privatizable

    def test_write_first_scalar_private(self):
        d = deps("for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }")
        assert "t" in d.privatizable

    def test_read_first_scalar_shared(self):
        d = deps("for (i = 0; i < n; i++) { b[i] = t; t = a[i]; }")
        assert "t" in d.shared_scalar_writes

    def test_conditional_write_not_private(self):
        d = deps("for (i = 0; i < n; i++) { if (a[i]) t = 1; b[i] = t; }")
        assert "t" in d.shared_scalar_writes

    def test_loop_var_not_classified(self):
        d = deps("for (i = 0; i < n; i++) a[i] = i;")
        assert "i" not in d.privatizable
        assert "i" not in d.shared_scalar_writes


class TestArrayDependence:
    def test_elementwise_no_dep(self):
        d = deps("for (i = 0; i < n; i++) a[i] = b[i] + 1;")
        assert not d.array_deps

    def test_flow_dependence(self):
        d = deps("for (i = 1; i < n; i++) a[i] = a[i-1] + 1;")
        assert any(dep.base == "a" for dep in d.array_deps)

    def test_anti_dependence(self):
        d = deps("for (i = 0; i < n; i++) a[i] = a[i+1];")
        assert any(dep.base == "a" for dep in d.array_deps)

    def test_same_cell_output_dependence(self):
        d = deps("for (i = 0; i < n; i++) a[0] = i;")
        assert any(dep.kind == "output" for dep in d.array_deps)

    def test_even_odd_writes_independent(self):
        d = deps("for (i = 0; i < n; i++) a[2*i] = a[2*i+1];")
        assert not d.array_deps

    def test_read_only_array_no_dep(self):
        d = deps("for (i = 0; i < n; i++) s += a[i] + a[i+1];")
        assert not d.array_deps  # a never written

    def test_multidim_independent_in_one_dim(self):
        d = deps("for (i = 0; i < n; i++) a[i][0] = a[i][1] + 1;")
        assert not d.array_deps

    def test_multidim_dependent(self):
        d = deps("for (i = 1; i < n; i++) a[i][0] = a[i-1][0];")
        assert d.array_deps

    def test_nonaffine_subscript_flagged(self):
        d = deps("for (i = 0; i < n; i++) a[b[i]] = i;")
        assert d.non_affine

    def test_symbolic_offset_same_both_sides(self):
        d = deps("for (i = 0; i < n; i++) a[i + off] = b[i];")
        assert not d.array_deps

    def test_inner_loop_var_subscript(self):
        d = deps(
            "for (i = 0; i < n; i++) "
            "for (j = 0; j < m; j++) a[i][j] = b[i][j];"
        )
        assert not d.array_deps


class TestIsDoall:
    def test_clean_doall(self):
        assert deps("for (i = 0; i < n; i++) a[i] = b[i];").is_doall()

    def test_reduction_needs_flag(self):
        d = deps("for (i = 0; i < n; i++) s += a[i];")
        assert not d.is_doall()
        assert d.is_doall(allow_reductions=True)

    def test_calls_block_by_default(self):
        d = deps("for (i = 0; i < n; i++) a[i] = f(i);")
        assert not d.is_doall()
        assert d.is_doall(assume_calls_pure=True)

    def test_non_canonical_never_doall(self):
        assert not deps("while (x > 0) x--;").is_doall()


def cond_deps(src):
    return analyze_loop(parse_loop(src), conditional_reductions=True)


class TestConditionalReductions:
    """The clause synthesizer leans on conditional-update handling."""

    def test_guarded_sum_needs_flag(self):
        src = "for (i = 0; i < n; i++) if (a[i] > 0) s += a[i];"
        assert not deps(src).reductions
        r = cond_deps(src).reductions
        assert [(x.var, x.op) for x in r] == [("s", "+")]

    def test_guarded_sum_not_shared_with_flag(self):
        src = "for (i = 0; i < n; i++) if (a[i] > 0) s += a[i];"
        assert "s" in deps(src).shared_scalar_writes
        assert "s" not in cond_deps(src).shared_scalar_writes

    def test_else_branch_update_counts(self):
        src = ("for (i = 0; i < n; i++)"
               "  if (a[i] > 0) s += a[i]; else s += 1;")
        r = cond_deps(src).reductions
        assert [(x.var, x.op) for x in r] == [("s", "+")]

    def test_guarded_mixed_ops_still_disqualified(self):
        src = ("for (i = 0; i < n; i++)"
               "  if (a[i] > 0) s += a[i]; else s *= 2;")
        assert not cond_deps(src).reductions
        assert "s" in cond_deps(src).shared_scalar_writes


class TestCountingUpdates:
    def test_increment_is_plus_reduction(self):
        r = deps("for (i = 0; i < n; i++) count++;").reductions
        assert [(x.var, x.op) for x in r] == [("count", "+")]

    def test_decrement_is_plus_reduction(self):
        r = deps("for (i = 0; i < n; i++) count--;").reductions
        assert [(x.var, x.op) for x in r] == [("count", "+")]

    def test_guarded_increment_needs_flag(self):
        src = "for (i = 0; i < n; i++) if (a[i] > 0) count++;"
        assert not deps(src).reductions
        r = cond_deps(src).reductions
        assert [(x.var, x.op) for x in r] == [("count", "+")]

    def test_prefix_and_postfix_equivalent(self):
        post = deps("for (i = 0; i < n; i++) hits++;").reductions
        pre = deps("for (i = 0; i < n; i++) ++hits;").reductions
        assert ([(x.var, x.op) for x in post]
                == [(x.var, x.op) for x in pre])


class TestChainedReductionOps:
    def test_two_updates_same_op(self):
        r = deps("for (i = 0; i < n; i++)"
                 "  { s += a[i]; s += b[i]; }").reductions
        assert [(x.var, x.op) for x in r] == [("s", "+")]
        assert r[0].statements == 2

    def test_three_updates_same_op(self):
        r = deps("for (i = 0; i < n; i++)"
                 "  { s += a[i]; s += b[i]; s += c[i]; }").reductions
        assert [(x.var, x.op) for x in r] == [("s", "+")]

    def test_chained_mixed_ops_disqualified(self):
        d = deps("for (i = 0; i < n; i++) { s += a[i]; s *= b[i]; }")
        assert not d.reductions
        assert "s" in d.shared_scalar_writes

    def test_independent_vars_chain_separately(self):
        r = deps("for (i = 0; i < n; i++)"
                 "  { s += a[i]; p *= b[i]; }").reductions
        assert sorted((x.var, x.op) for x in r) == [("p", "*"),
                                                    ("s", "+")]

    def test_minus_then_plus_share_plus_family(self):
        r = deps("for (i = 0; i < n; i++)"
                 "  { s -= a[i]; s += b[i]; }").reductions
        assert [(x.var, x.op) for x in r] == [("s", "+")]


class TestPrivatizableVsLiveOut:
    """analyze_loop classifies locally; liveness is the caller's job.

    The rewrite planner (repro.rewrite.clauses) splits privatizable
    into private/lastprivate using scalars_read_after — these tests pin
    the classification it builds on.
    """

    def test_write_first_temporary_privatizable(self):
        d = deps("for (i = 0; i < n; i++) { t = a[i]; b[i] = t * 2; }")
        assert "t" in d.privatizable
        assert "t" not in d.shared_scalar_writes

    def test_block_decl_privatizable(self):
        d = deps("for (i = 0; i < n; i++) { int t = a[i]; b[i] = t; }")
        assert "t" in d.privatizable

    def test_read_before_write_not_privatizable(self):
        d = deps("for (i = 0; i < n; i++) { b[i] = t; t = a[i]; }")
        assert "t" not in d.privatizable
        assert "t" in d.shared_scalar_writes

    def test_conditional_first_write_not_privatizable(self):
        d = deps("for (i = 0; i < n; i++)"
                 "  { if (a[i] > 0) t = a[i]; b[i] = t; }")
        assert "t" not in d.privatizable

    def test_two_temporaries_both_privatizable(self):
        d = deps("for (i = 0; i < n; i++)"
                 "  { u = a[i]; v = u + 1; b[i] = u * v; }")
        assert {"u", "v"} <= d.privatizable

    def test_privatizable_is_not_a_reduction(self):
        d = deps("for (i = 0; i < n; i++) { t = a[i]; b[i] = t; }")
        assert not d.reductions
