"""Tests for canonical loop recognition."""

import pytest

from repro.cfront import parse_loop
from repro.tools.canonical import recognize_canonical


def canon(src):
    return recognize_canonical(parse_loop(src))


class TestRecognised:
    def test_basic_ascending(self):
        c = canon("for (i = 0; i < n; i++) s += i;")
        assert c is not None
        assert (c.var, c.cmp_op, c.step) == ("i", "<", 1)
        assert c.ascending and c.unit_stride

    def test_decl_init(self):
        c = canon("for (int i = 2; i <= m; i++) a[i] = 0;")
        assert c.var == "i" and c.cmp_op == "<=" and c.lower.value == 2

    def test_descending(self):
        c = canon("for (i = n; i > 0; i--) a[i] = 0;")
        assert c.step == -1 and not c.ascending

    def test_strided(self):
        c = canon("for (i = 0; i < n; i += 4) a[i] = 0;")
        assert c.step == 4 and not c.unit_stride

    def test_i_equals_i_plus_c(self):
        c = canon("for (i = 0; i < n; i = i + 3) a[i] = 0;")
        assert c.step == 3

    def test_reversed_comparison(self):
        c = canon("for (i = 0; n > i; i++) a[i] = 0;")
        assert c is not None and c.cmp_op == "<"

    def test_symbolic_step(self):
        c = canon("for (i = 0; i < n; i += step) v += 2;")
        assert c is not None and c.step == 0 and c.step_expr is not None

    def test_prefix_increment(self):
        c = canon("for (i = 0; i < n; ++i) a[i] = 0;")
        assert c is not None and c.step == 1

    def test_missing_init_external_var(self):
        c = canon("for (; i < n; i++) a[i] = 0;")
        assert c is not None and c.lower is None


class TestRejected:
    @pytest.mark.parametrize("src", [
        "while (i < n) i++;",
        "do i++; while (i < n);",
        "for (;;) x++;",                               # no condition
        "for (i = 0; i != n; i++) a[i] = 0;",          # != comparison
        "for (i = 0; i < n; i *= 2) a[i] = 0;",        # multiplicative step
        "for (i = 0; i < n; i++) { if (a[i]) break; }",  # break
        "for (i = 0; i < n; i++) { i += 2; }",         # writes loop var
        "for (i = 0; i < n; i++) { if (x) return; }",  # return
        "for (i = 0; i < n; j++) a[j] = 0;",           # inc of other var
        "for (i = 0; i > n; i++) a[i] = 0;",           # diverging
    ])
    def test_non_canonical(self, src):
        assert canon(src) is None
