"""Tests for the mini C interpreter."""

import pytest

from repro.cfront import parse_loop
from repro.tools.interp import (
    ExecutionBudgetExceeded,
    Interpreter,
    UnsupportedConstruct,
)


def run(src, **kwargs):
    interp = Interpreter(**kwargs)
    loop = parse_loop(src)
    trace = interp.run_loop(loop)
    return interp, trace


class TestExecution:
    def test_simple_loop_runs_all_iterations(self):
        interp, trace = run("for (i = 0; i < 5; i++) a[i] = i;")
        assert trace.iterations == 5
        base, _ = interp.memory.bases["a"]
        assert [interp.memory.read(base + k) for k in range(5)] == [0, 1, 2, 3, 4]

    def test_literal_bound_capped_at_max_trip(self):
        _, trace = run("for (i = 0; i < 30000000; i++) s += i;", max_trip=8)
        assert trace.iterations == 8

    def test_symbolic_bound_bound_to_max_trip(self):
        _, trace = run("for (i = 0; i < n; i++) s += i;", max_trip=6)
        assert trace.iterations == 6

    def test_reduction_value_correct(self):
        interp, trace = run("for (i = 0; i < 5; i++) s = s + i;")
        base, _ = interp.memory.bases["s"]
        # s starts at its synthesized value; the loop adds 0+1+2+3+4 = 10
        assert trace.iterations == 5

    def test_while_loop(self):
        interp, trace = run("while (k < 3) k++;")
        assert trace.iterations >= 1

    def test_do_while(self):
        _, trace = run("do x--; while (x > 0);")
        assert trace.iterations >= 1

    def test_nested_loop_inner_not_traced(self):
        _, trace = run(
            "for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) a[i][j] = 0;"
        )
        # Only outer-loop iterations are traced.
        assert trace.iterations == 3

    def test_if_else_branches(self):
        interp, trace = run(
            "for (i = 0; i < 4; i++) { if (i % 2 == 0) a[i] = 1; else a[i] = 2; }"
        )
        base, _ = interp.memory.bases["a"]
        assert [interp.memory.read(base + k) for k in range(4)] == [1, 2, 1, 2]

    def test_break_stops_loop(self):
        _, trace = run("for (i = 0; i < 10; i++) { if (i == 2) break; a[i] = i; }")
        assert trace.iterations == 3

    def test_continue_skips(self):
        interp, _ = run(
            "for (i = 0; i < 4; i++) { if (i == 1) continue; a[i] = 9; }"
        )
        base, _ = interp.memory.bases["a"]
        assert interp.memory.read(base + 1) != 9

    def test_math_whitelist(self):
        interp, _ = run("for (i = 0; i < 3; i++) b[i] = fabs(a[i]);")
        base, _ = interp.memory.bases["b"]
        assert all(interp.memory.read(base + k) >= 0 for k in range(3))

    def test_ternary(self):
        interp, _ = run("for (i = 0; i < 3; i++) a[i] = i > 1 ? 5 : 7;")
        base, _ = interp.memory.bases["a"]
        assert interp.memory.read(base + 0) == 7
        assert interp.memory.read(base + 2) == 5

    def test_local_array_decl(self):
        _, trace = run("for (i = 0; i < 3; i++) { int t[4]; t[0] = i; }")
        assert trace.iterations == 3


class TestTracing:
    def test_events_tag_iterations(self):
        _, trace = run("for (i = 0; i < 3; i++) a[i] = b[i];")
        iters = {e.iteration for e in trace.events}
        assert iters == {0, 1, 2}

    def test_reads_and_writes_distinguished(self):
        _, trace = run("for (i = 0; i < 3; i++) a[i] = b[i];")
        a_events = [e for e in trace.events if e.base == "a"]
        b_events = [e for e in trace.events if e.base == "b"]
        assert all(e.is_write for e in a_events)
        assert all(not e.is_write for e in b_events)

    def test_distinct_cells_distinct_addresses(self):
        _, trace = run("for (i = 0; i < 4; i++) a[i] = 0;")
        addrs = {e.address for e in trace.events if e.base == "a"}
        assert len(addrs) == 4

    def test_same_cell_same_address(self):
        _, trace = run("for (i = 0; i < 4; i++) s += a[i];")
        s_addrs = {e.address for e in trace.events if e.base == "s"}
        assert len(s_addrs) == 1

    def test_scalar_bases_recorded(self):
        _, trace = run("for (i = 0; i < 3; i++) s += a[i];")
        assert "s" in trace.scalar_bases
        assert "a" not in trace.scalar_bases


class TestUnsupported:
    @pytest.mark.parametrize("src", [
        "for (i = 0; i < n; i++) a[i] = mystery(i);",      # unknown call
        "for (i = 0; i < n; i++) *p = i;",                  # pointer deref
        "for (i = 0; i < n; i++) s += p->v;",               # member access
        "for (i = 0; i < n; i++) { goto done; }\ndone: ;",  # goto
    ])
    def test_raises_unsupported(self, src):
        with pytest.raises(UnsupportedConstruct):
            run(src)

    def test_budget_exceeded(self):
        with pytest.raises(ExecutionBudgetExceeded):
            run("for (i = 0; i < 5; i++) while (1) x++;", max_steps=2000)
