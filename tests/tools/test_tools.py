"""Behavioural tests for the three comparator tools.

Each test pins a decision the paper attributes to the real tool:
zero false positives, the coverage gates, and the characteristic misses
(Listings 1–8, Figure 2 categories).
"""

import pytest

from repro.cfront import parse_loop
from repro.tools import AutoPar, DiscoPoP, Pluto, ToolVerdict, make_tool

LISTING1 = "for (i = 0; i < 30000000; i++) error = error + fabs(a[i] - a[i+1]);"
LISTING4 = "for (int i = 0; i < N; i += step) { v += 2; v = v + step; }"
LISTING5 = (
    "for (j = 0; j < 4; j++) for (i = 0; i < 5; i++) "
    "for (k = 0; k < 6; k += 2) l++;"
)
LISTING8 = (
    "for (i = 0; i < 12; i++) for (j = 0; j < 12; j++) "
    "for (k = 0; k < 12; k++) { tmp1 = 6.0 / m; a[i][j][k] = tmp1 + 4; }"
)

DOALL = "for (i = 0; i < n; i++) a[i] = b[i] * 2;"
REDUCTION = "for (i = 0; i < n; i++) s += a[i];"
TRUE_DEP = "for (i = 1; i < n; i++) a[i] = a[i-1] + 1;"
SAME_CELL = "for (i = 0; i < n; i++) a[0] = i;"

#: clearly sequential loops no sound tool may mark parallel
NEGATIVE_LOOPS = [
    TRUE_DEP,
    SAME_CELL,
    "for (i = 2; i < n; i++) f[i] = f[i-1] + f[i-2];",   # fibonacci
    "for (i = 0; i < n; i++) { s = s * a[i] + b[i]; }",  # polynomial eval
    "while (p > 0) p--;",
]


def verdicts(src):
    loop = parse_loop(src)
    return {
        name: make_tool(name).analyze_loop(loop)
        for name in ("pluto", "autopar", "discopop")
    }


class TestZeroFalsePositives:
    """Table 4: the tools report FP = 0; soundness is their contract."""

    @pytest.mark.parametrize("src", NEGATIVE_LOOPS)
    def test_no_tool_claims_parallel(self, src):
        for name, result in verdicts(src).items():
            assert not result.parallel, f"{name} false positive on: {src}"


class TestCommonDetections:
    def test_all_find_simple_doall(self):
        for name, result in verdicts(DOALL).items():
            assert result.parallel, f"{name} missed a trivial do-all"

    def test_strided_doall(self):
        for name, result in verdicts(
            "for (i = 0; i < n; i += 2) a[i] = b[i];"
        ).items():
            assert result.parallel, name


class TestPluto:
    def test_misses_reductions(self):
        r = Pluto().analyze_loop(parse_loop(REDUCTION))
        assert r.verdict is ToolVerdict.NOT_PARALLEL

    def test_rejects_calls_as_unprocessable(self):
        r = Pluto().analyze_loop(parse_loop(LISTING1))
        assert r.verdict is ToolVerdict.UNPROCESSABLE
        assert "call" in r.reason

    def test_rejects_conditionals(self):
        r = Pluto().analyze_loop(
            parse_loop("for (i = 0; i < n; i++) { if (b[i]) a[i] = 0; }")
        )
        assert r.verdict is ToolVerdict.UNPROCESSABLE

    def test_rejects_while(self):
        r = Pluto().analyze_loop(parse_loop("while (x) x--;"))
        assert r.verdict is ToolVerdict.UNPROCESSABLE

    def test_handles_affine_nest(self):
        r = Pluto().analyze_loop(
            parse_loop(
                "for (i = 0; i < n; i++) for (j = 0; j < m; j++) "
                "a[i][j] = b[i][j];"
            )
        )
        assert r.parallel

    def test_listing8_unprocessable_division(self):
        r = Pluto().analyze_loop(parse_loop(LISTING8))
        assert r.verdict is ToolVerdict.UNPROCESSABLE


class TestAutoPar:
    def test_detects_reduction_with_clause(self):
        r = AutoPar().analyze_loop(parse_loop(REDUCTION))
        assert r.parallel and "reduction" in r.patterns

    def test_detects_private(self):
        r = AutoPar().analyze_loop(
            parse_loop("for (i = 0; i < n; i++) { t = a[i]; b[i] = t * t; }")
        )
        assert r.parallel and "private" in r.patterns

    def test_call_blocks_parallelism_listing3_style(self):
        r = AutoPar().analyze_loop(
            parse_loop("for (int i = 0; i < size; i++) v[i] = square(v[i]);")
        )
        assert r.verdict is ToolVerdict.NOT_PARALLEL
        assert "call" in r.reason

    def test_multi_statement_reduction_missed_listing4(self):
        r = AutoPar().analyze_loop(parse_loop(LISTING4))
        assert r.verdict is ToolVerdict.NOT_PARALLEL

    def test_finds_nested_counting_listing5(self):
        r = AutoPar().analyze_loop(parse_loop(LISTING5))
        assert r.parallel and "reduction" in r.patterns

    def test_while_unprocessable(self):
        r = AutoPar().analyze_loop(parse_loop("while (x) x--;"))
        assert r.verdict is ToolVerdict.UNPROCESSABLE


class TestDiscoPoP:
    def test_detects_dynamic_reduction(self):
        r = DiscoPoP().analyze_loop(parse_loop(REDUCTION))
        assert r.parallel and "reduction" in r.patterns

    def test_reduction_with_call_missed_listing1(self):
        r = DiscoPoP().analyze_loop(parse_loop(LISTING1))
        assert r.verdict is ToolVerdict.NOT_PARALLEL

    def test_multi_statement_reduction_missed_listing4(self):
        r = DiscoPoP().analyze_loop(parse_loop(LISTING4))
        assert r.verdict is ToolVerdict.NOT_PARALLEL

    def test_outer_nest_missed_listing5(self):
        r = DiscoPoP().analyze_loop(parse_loop(LISTING5))
        assert r.verdict is ToolVerdict.NOT_PARALLEL
        assert "nest" in r.reason

    def test_unknown_call_unprocessable(self):
        r = DiscoPoP().analyze_loop(
            parse_loop("for (i = 0; i < n; i++) a[i] = helper(i);")
        )
        assert r.verdict is ToolVerdict.UNPROCESSABLE

    def test_pointer_unprocessable(self):
        r = DiscoPoP().analyze_loop(parse_loop("for (i = 0; i < n; i++) *p += 1;"))
        assert r.verdict is ToolVerdict.UNPROCESSABLE

    def test_dynamic_private_scalar_ok(self):
        r = DiscoPoP().analyze_loop(
            parse_loop("for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }")
        )
        assert r.parallel

    def test_array_cell_waw_not_private(self):
        r = DiscoPoP().analyze_loop(parse_loop(SAME_CELL))
        assert r.verdict is ToolVerdict.NOT_PARALLEL


class TestFileGates:
    """§2 coverage: file-level applicability differs per toolchain."""

    def test_discopop_needs_runnable_program(self):
        meta_lib = {"compiles": True, "has_main": False, "external_calls": False}
        meta_app = {"compiles": True, "has_main": True, "external_calls": False}
        assert not DiscoPoP().can_process_file(meta_lib)
        assert DiscoPoP().can_process_file(meta_app)

    def test_discopop_rejects_external_calls(self):
        meta = {"compiles": True, "has_main": True, "external_calls": True}
        assert not DiscoPoP().can_process_file(meta)

    def test_autopar_rejects_nonstandard_headers(self):
        assert not AutoPar().can_process_file(
            {"compiles": True, "uses_nonstandard_headers": True}
        )

    def test_pluto_needs_only_parseable_source(self):
        assert Pluto().can_process_file({"compiles": True, "has_main": False})

    def test_nothing_processes_uncompilable_files(self):
        for name in ("pluto", "autopar", "discopop"):
            assert not make_tool(name).can_process_file({"compiles": False})


class TestMakeTool:
    def test_known_names(self):
        assert make_tool("pluto").name == "pluto"
        assert make_tool("AutoPar").name == "autopar"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_tool("polly")
