"""Tests for extraction, synthetic generation, corpus assembly, OMPSerial."""

import pytest

from repro.cfront import parse_source
from repro.dataset import (
    CorpusGenerator,
    DatasetConfig,
    OMPSerial,
    SyntheticGenerator,
    extract_loops_from_source,
    generate_omp_serial,
    load_jsonl,
    save_jsonl,
)
from repro.dataset.oracle import oracle_parallel
from repro.dataset.sample import LoopSample


class TestExtraction:
    SOURCE = """
    #include <stdio.h>
    double a[100], b[100], s;
    void kernel(void) {
        int i;
        #pragma omp parallel for reduction(+:s)
        for (i = 0; i < 100; i++)
            s += a[i];
        for (i = 0; i < 100; i++)
            a[i] = a[i-1] + b[i];
    }
    """

    def test_two_loops_extracted(self):
        samples = extract_loops_from_source(self.SOURCE)
        assert len(samples) == 2

    def test_labels_follow_pragmas(self):
        samples = extract_loops_from_source(self.SOURCE)
        assert samples[0].parallel and samples[0].category == "reduction"
        assert not samples[1].parallel and samples[1].category is None

    def test_loop_source_excludes_pragma(self):
        samples = extract_loops_from_source(self.SOURCE)
        assert "#pragma" not in samples[0].source
        assert samples[0].pragma is not None

    def test_loop_source_reparses(self):
        for s in extract_loops_from_source(self.SOURCE):
            assert s.ast() is not None

    def test_nested_loops_counted_once(self):
        src = """
        void f(void) {
            int i, j, x;
            for (i = 0; i < 4; i++)
                for (j = 0; j < 4; j++)
                    x++;
        }
        """
        samples = extract_loops_from_source(src)
        assert len(samples) == 1
        assert samples[0].nested

    def test_call_flag(self):
        src = "void f(void) { int i; for (i = 0; i < 9; i++) g(i); }"
        samples = extract_loops_from_source(src)
        assert samples[0].has_call

    def test_file_meta_propagates(self):
        samples = extract_loops_from_source(
            self.SOURCE, file_meta={"has_main": True}, file_id=7,
        )
        assert all(s.file_meta == {"has_main": True} for s in samples)
        assert all(s.file_id == 7 for s in samples)


class TestSyntheticGenerator:
    def test_programs_compile_and_label(self):
        gen = SyntheticGenerator(seed=3)
        samples = gen.generate(n_reduction=5, n_doall=5, n_non_parallel=5)
        assert len(samples) == 15
        assert sum(s.parallel for s in samples) == 10

    def test_reduction_programs_labelled_reduction(self):
        gen = SyntheticGenerator(seed=4)
        samples = gen.generate(n_reduction=5, n_doall=0, n_non_parallel=0)
        assert all(s.category == "reduction" for s in samples)

    def test_loops_are_large(self):
        """Table 1: synthetic parallel loops average ~30 LOC."""
        gen = SyntheticGenerator(seed=5)
        samples = gen.generate(n_reduction=10, n_doall=10, n_non_parallel=0)
        avg = sum(s.loc for s in samples) / len(samples)
        assert avg > 12

    def test_origin_marked_synthetic(self):
        gen = SyntheticGenerator(seed=6)
        samples = gen.generate(1, 1, 1)
        assert all(s.origin == "synthetic" for s in samples)

    def test_ground_truth_against_oracle(self):
        gen = SyntheticGenerator(seed=7)
        for s in gen.generate(8, 8, 8):
            assert oracle_parallel(s.ast()) == s.parallel, s.source

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            SyntheticGenerator().render_loop("banana")

    def test_programs_have_main(self):
        gen = SyntheticGenerator(seed=8)
        program, meta = gen.render_program("reduction")
        assert meta["has_main"]
        tu = parse_source(program)
        assert tu.function("main") is not None


class TestCorpusGenerator:
    def test_generated_files_parse(self):
        gen = CorpusGenerator(seed=11)
        samples, files = gen.generate(scale=0.005)
        assert files and samples
        for f in files[:10]:
            parse_source(f.source)  # must not raise

    def test_category_counts_scale(self):
        gen = CorpusGenerator(seed=12)
        samples, _ = gen.generate(scale=0.01)
        parallel = [s for s in samples if s.parallel]
        non_parallel = [s for s in samples if not s.parallel]
        # Table 1 ratio: 18598 / 13972 ≈ 1.33
        ratio = len(parallel) / max(len(non_parallel), 1)
        assert 1.0 < ratio < 1.7

    def test_all_categories_present(self):
        gen = CorpusGenerator(seed=13)
        samples, _ = gen.generate(scale=0.01)
        cats = {s.category for s in samples if s.parallel}
        assert cats == {"reduction", "private", "simd", "target", "parallel"}

    def test_file_meta_rates(self):
        gen = CorpusGenerator(seed=14)
        _, files = gen.generate(scale=0.02)
        has_main = sum(f.meta["has_main"] for f in files) / len(files)
        assert has_main < 0.3  # most crawled files are library code

    def test_parallel_labels_sound_against_oracle(self):
        """Every pragma-annotated loop must be genuinely parallelisable
        (no false pragmas — the tools' zero-FP contract depends on it)."""
        gen = CorpusGenerator(seed=15)
        samples, _ = gen.generate(scale=0.004)
        bad = [
            s for s in samples
            if s.parallel and not oracle_parallel(s.ast())
        ]
        assert not bad, bad[0].source

    def test_unannotated_parallel_fraction(self):
        """A calibrated share of non-parallel-labelled loops is genuinely
        parallel (developer left it unannotated, paper §6.4); it must be
        near the configured fraction, and zero when disabled."""
        gen = CorpusGenerator(seed=16, unannotated_parallel_fraction=0.3)
        samples, _ = gen.generate(scale=0.01)
        negatives = [s for s in samples if not s.parallel]
        hidden = sum(1 for s in negatives if oracle_parallel(s.ast()))
        rate = hidden / len(negatives)
        assert 0.15 < rate < 0.45

        gen_off = CorpusGenerator(seed=16, unannotated_parallel_fraction=0.0)
        samples_off, _ = gen_off.generate(scale=0.004)
        negatives_off = [s for s in samples_off if not s.parallel]
        hidden_off = sum(1 for s in negatives_off if oracle_parallel(s.ast()))
        assert hidden_off == 0


class TestOMPSerial:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_omp_serial(DatasetConfig(scale=0.01, seed=2))

    def test_counts(self, dataset):
        assert len(dataset) > 200
        assert len(dataset.parallel_loops()) + len(dataset.non_parallel_loops()) \
            == len(dataset)

    def test_stats_rows_structure(self, dataset):
        rows = dataset.stats()
        assert any(r["pragma_type"] == "reduction" for r in rows)
        for row in rows:
            assert set(row) == {
                "source", "type", "pragma_type", "loops", "function_call",
                "nested_loops", "avg_loc",
            }

    def test_split_disjoint_and_file_level(self, dataset):
        train, test = dataset.train_test_split(test_fraction=0.25)
        assert len(train) + len(test) == len(dataset)
        train_files = {(s.origin, s.file_id) for s in train}
        test_files = {(s.origin, s.file_id) for s in test}
        assert not train_files & test_files

    def test_split_deterministic(self, dataset):
        a = dataset.train_test_split(seed=5)
        b = dataset.train_test_split(seed=5)
        assert [s.source for s in a[1]] == [s.source for s in b[1]]

    def test_save_load_round_trip(self, dataset, tmp_path):
        path = tmp_path / "ds.jsonl"
        dataset.save(path)
        again = OMPSerial.load(path)
        assert len(again) == len(dataset)
        assert again.samples[0].source == dataset.samples[0].source
        assert again.samples[0].parallel == dataset.samples[0].parallel

    def test_generation_deterministic(self):
        a = generate_omp_serial(DatasetConfig(scale=0.005, seed=9))
        b = generate_omp_serial(DatasetConfig(scale=0.005, seed=9))
        assert [s.source for s in a] == [s.source for s in b]

    def test_different_seeds_differ(self):
        a = generate_omp_serial(DatasetConfig(scale=0.005, seed=1))
        b = generate_omp_serial(DatasetConfig(scale=0.005, seed=2))
        assert [s.source for s in a] != [s.source for s in b]


class TestSampleIO:
    def test_jsonl_round_trip(self, tmp_path):
        samples = [
            LoopSample(source="for (i = 0; i < n; i++) s += 1;",
                       parallel=True, category="reduction",
                       pragma="pragma omp parallel for reduction(+:s)",
                       loc=2),
        ]
        path = tmp_path / "x.jsonl"
        save_jsonl(samples, path)
        loaded = load_jsonl(path)
        assert loaded[0].source == samples[0].source
        assert loaded[0].label == 1

    def test_label_property(self):
        assert LoopSample(source="", parallel=True).label == 1
        assert LoopSample(source="", parallel=False).label == 0
