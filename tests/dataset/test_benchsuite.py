"""Tests for the fixed benchmark suite (out-of-distribution eval set)."""

import pytest

from repro.dataset.benchsuite import BENCHMARK_PROGRAMS, benchmark_suite_samples
from repro.dataset.oracle import oracle_parallel
from repro.tools import make_tool


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite_samples()


class TestBenchmarkSuite:
    def test_every_program_yields_loops(self, suite):
        names = {s.file_meta["name"] for s in suite}
        assert len(names) == len(BENCHMARK_PROGRAMS)

    def test_both_classes_present(self, suite):
        labels = {s.parallel for s in suite}
        assert labels == {True, False}

    def test_all_four_categories_present(self, suite):
        cats = {s.category for s in suite if s.parallel}
        assert {"reduction", "private", "simd", "target"} <= cats

    def test_labels_agree_with_oracle(self, suite):
        for s in suite:
            assert oracle_parallel(s.ast()) == s.parallel, s.file_meta["name"]

    def test_tools_have_zero_false_positives_on_suite(self, suite):
        for name in ("pluto", "autopar", "discopop"):
            tool = make_tool(name)
            for s in suite:
                if s.parallel:
                    continue
                verdict = tool.analyze_loop(
                    s.ast(),
                    pointer_arrays=frozenset(s.pointer_arrays),
                    file_meta=s.file_meta,
                )
                assert not verdict.parallel, (name, s.file_meta["name"])

    def test_origin_tag(self, suite):
        assert all(s.origin == "benchsuite" for s in suite)

    def test_listing1_family_kernel_defeats_all_tools(self, suite):
        """norm_with_call mirrors Listing 1: reduction through libm."""
        sample = next(s for s in suite
                      if s.file_meta["name"] == "norm_with_call_like")
        for name in ("pluto", "autopar", "discopop"):
            verdict = make_tool(name).analyze_loop(
                sample.ast(), file_meta=sample.file_meta,
            )
            assert not verdict.parallel, name
