"""Tests for loop recipes: parseability and ground-truth correctness."""

import pytest

from repro.cfront import parse_loop
from repro.dataset.oracle import oracle_parallel
from repro.dataset.recipes import CATEGORY_PROFILES, RecipeGenerator
from repro.pragma import loop_label

CATEGORIES = ["reduction", "private", "simd", "target", "parallel", None]


@pytest.fixture(scope="module")
def generator():
    return RecipeGenerator(seed=99)


class TestRecipeWellFormedness:
    @pytest.mark.parametrize("category", CATEGORIES)
    def test_recipes_parse(self, generator, category):
        for _ in range(25):
            recipe = generator.generate(category)
            loop = parse_loop(recipe.body)
            assert loop is not None

    @pytest.mark.parametrize("category", CATEGORIES)
    def test_pragma_matches_category(self, generator, category):
        for _ in range(25):
            recipe = generator.generate(category)
            if category is None:
                assert recipe.pragma is None
                assert not recipe.parallel
            else:
                parallel, labelled = loop_label(
                    [recipe.pragma.lstrip("#")]
                )
                assert parallel
                assert labelled == category

    def test_unknown_category_raises(self, generator):
        with pytest.raises(ValueError):
            generator.generate("weird")

    @pytest.mark.parametrize("category", ["reduction", "private", "simd"])
    def test_variability(self, generator, category):
        sources = {generator.generate(category).body for _ in range(20)}
        assert len(sources) >= 15  # recipes are not clones


class TestGroundTruth:
    """Parallel recipes must be truly parallel; non-parallel truly not.

    The oracle is the idealised analysis; a handful of recipes are
    deliberately beyond it (none currently), so we demand 100 % here.
    """

    @pytest.mark.parametrize("category",
                             ["reduction", "private", "simd", "target",
                              "parallel"])
    def test_parallel_recipes_pass_oracle(self, generator, category):
        for k in range(40):
            recipe = generator.generate(category)
            loop = parse_loop(recipe.body)
            assert oracle_parallel(loop), (
                f"recipe labelled parallel but oracle disagrees:\n{recipe.body}"
            )

    def test_non_parallel_recipes_fail_oracle(self, generator):
        for k in range(40):
            recipe = generator.generate(None)
            loop = parse_loop(recipe.body)
            assert not oracle_parallel(loop), (
                f"recipe labelled sequential but oracle says parallel:\n"
                f"{recipe.body}"
            )


class TestProfiles:
    def test_profiles_cover_all_categories(self):
        for cat in CATEGORIES:
            assert cat in CATEGORY_PROFILES

    def test_rates_are_probabilities(self):
        for call_rate, nested_rate, loc in CATEGORY_PROFILES.values():
            assert 0 <= call_rate <= 1
            assert 0 <= nested_rate <= 1
            assert loc > 0

    def test_trait_rates_respected(self, generator):
        """Empirical call/nest rates track the profile within tolerance."""
        n = 300
        recipes = [generator.generate("private") for _ in range(n)]
        call_rate, nested_rate, _ = CATEGORY_PROFILES["private"]
        measured_call = sum(r.has_call for r in recipes) / n
        measured_nested = sum(r.nested for r in recipes) / n
        assert abs(measured_call - call_rate) < 0.08
        assert abs(measured_nested - nested_rate) < 0.10
