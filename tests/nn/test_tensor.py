"""Autodiff correctness: every op is checked against central differences."""

import numpy as np
import pytest

from repro.nn.tensor import (
    Tensor,
    concat,
    log_softmax,
    no_grad,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    stack,
)
from tests.nn.gradcheck import check_gradient

rng = np.random.default_rng(42)


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3))
        assert np.allclose((a + b).data, 1 + np.arange(3))

    def test_scalar_ops(self):
        x = Tensor([1.0, 2.0])
        assert np.allclose((x * 3 + 1).data, [4.0, 7.0])
        assert np.allclose((1 - x).data, [0.0, -1.0])
        assert np.allclose((6 / x).data, [6.0, 3.0])

    def test_matmul_2d(self):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        out = Tensor(a) @ Tensor(b)
        assert np.allclose(out.data, a @ b, atol=1e-5)

    def test_matmul_batched(self):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        out = Tensor(a) @ Tensor(b)
        assert np.allclose(out.data, a @ b, atol=1e-5)

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]) @ Tensor([[1.0], [2.0]])

    def test_softmax_rows_sum_to_one(self):
        p = softmax(Tensor(rng.normal(size=(4, 7))))
        assert np.allclose(p.data.sum(axis=-1), 1.0, atol=1e-6)

    def test_log_softmax_matches_softmax(self):
        x = Tensor(rng.normal(size=(3, 5)))
        assert np.allclose(np.exp(log_softmax(x).data), softmax(x).data, atol=1e-6)

    def test_segment_sum_values(self):
        x = Tensor(np.arange(8, dtype=np.float32).reshape(4, 2))
        out = segment_sum(x, np.array([0, 0, 1, 1]), 2)
        assert np.allclose(out.data, [[2, 4], [10, 12]])

    def test_segment_mean_handles_empty_segment(self):
        x = Tensor(np.ones((2, 3)))
        out = segment_mean(x, np.array([0, 0]), 3)
        assert np.allclose(out.data[0], 1.0)
        assert np.allclose(out.data[2], 0.0)  # empty segment -> zeros

    def test_segment_softmax_normalises_within_segments(self):
        logits = Tensor(rng.normal(size=6))
        seg = np.array([0, 0, 0, 1, 1, 2])
        p = segment_softmax(logits, seg, 3)
        assert np.isclose(p.data[:3].sum(), 1.0, atol=1e-6)
        assert np.isclose(p.data[3:5].sum(), 1.0, atol=1e-6)
        assert np.isclose(p.data[5], 1.0, atol=1e-6)

    def test_segment_softmax_extreme_logits_stable(self):
        logits = Tensor(np.array([1000.0, 999.0, -1000.0]))
        p = segment_softmax(logits, np.array([0, 0, 0]), 1)
        assert np.isfinite(p.data).all()
        assert np.isclose(p.data.sum(), 1.0, atol=1e-6)

    def test_getitem_rows(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = x[np.array([2, 0])]
        assert np.allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_concat_and_stack(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 3)))
        assert concat([a, b], axis=0).shape == (4, 3)
        assert concat([a, b], axis=1).shape == (2, 6)
        assert stack([a, b], axis=0).shape == (2, 2, 3)

    def test_no_grad_blocks_tape(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2)))
        mask = np.array([[True, False], [False, True]])
        out = x.masked_fill(mask, -1e9)
        assert out.data[0, 0] == -1e9 and out.data[0, 1] == 1.0


class TestBackwardElementwise:
    @pytest.mark.parametrize(
        "op",
        [
            lambda t: (t * t).sum(),
            lambda t: (t + 2.0).sum(),
            lambda t: (t / 3.0).sum(),
            lambda t: (2.0 / (t + 3.0)).sum(),
            lambda t: (t ** 3).sum(),
            lambda t: t.exp().sum(),
            lambda t: t.tanh().sum(),
            lambda t: t.sigmoid().sum(),
            lambda t: t.gelu().sum(),
            lambda t: (t - t.mean()).sum(),
            lambda t: t.sqrt().sum(),
        ],
    )
    def test_unary_grads(self, op):
        x = rng.uniform(0.5, 2.0, size=(3, 4))
        check_gradient(op, x)

    def test_relu_grad_off_kink(self):
        x = rng.uniform(0.1, 1.0, size=(4,)) * np.array([1, -1, 1, -1])
        check_gradient(lambda t: t.relu().sum(), x)

    def test_abs_grad_off_zero(self):
        x = np.array([1.5, -2.5, 0.5, -0.25])
        check_gradient(lambda t: t.abs().sum(), x)

    def test_mul_both_sides(self):
        a = rng.normal(size=(3, 3))

        def loss(t):
            return (t * t.transpose()).sum()

        check_gradient(loss, a)

    def test_broadcast_add_grad(self):
        x = rng.normal(size=(1, 4))
        check_gradient(lambda t: (t + np.ones((3, 4))).sum(), x)

    def test_broadcast_mul_grad(self):
        x = rng.normal(size=(3, 1))
        check_gradient(lambda t: (t * np.arange(8.0).reshape(1, 8)).sum(), x)


class TestBackwardReductionsAndShapes:
    def test_sum_axis(self):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), x)

    def test_sum_keepdims(self):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), x)

    def test_mean_grad(self):
        x = rng.normal(size=(5,))
        check_gradient(lambda t: (t.mean() ** 2).sum(), x)

    def test_max_grad(self):
        x = np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]])
        check_gradient(lambda t: t.max(axis=1).sum(), x)

    def test_reshape_grad(self):
        x = rng.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4) ** 2).sum(), x)

    def test_transpose_grad(self):
        x = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: (t.transpose(2, 0, 1) ** 2).sum(), x)

    def test_swapaxes_grad(self):
        x = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: (t.swapaxes(1, 2) ** 2).sum(), x)

    def test_getitem_grad_with_repeats(self):
        x = rng.normal(size=(4, 3))
        idx = np.array([0, 2, 0, 3])
        check_gradient(lambda t: (t[idx] ** 2).sum(), x)

    def test_slice_grad(self):
        x = rng.normal(size=(4, 4))
        check_gradient(lambda t: (t[1:3, :2] ** 2).sum(), x)


class TestBackwardMatmulSoftmax:
    def test_matmul_grad_lhs_rhs(self):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))

        def loss_a(t):
            return ((t @ Tensor(b)) ** 2).sum()

        check_gradient(loss_a, a)

        def loss_b(t):
            return ((Tensor(a) @ t) ** 2).sum()

        check_gradient(loss_b, b)

    def test_batched_matmul_grad(self):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 3))
        check_gradient(lambda t: ((t @ Tensor(b)) ** 2).sum(), a)

    def test_broadcast_matmul_grad(self):
        a = rng.normal(size=(2, 5, 3, 4))
        b = rng.normal(size=(3 * 4,)).reshape(4, 3)
        check_gradient(lambda t: ((Tensor(a) @ t) ** 2).sum(), b)

    def test_softmax_grad(self):
        x = rng.normal(size=(3, 5))
        check_gradient(lambda t: (softmax(t) * np.arange(5.0)).sum(), x)

    def test_log_softmax_grad(self):
        x = rng.normal(size=(2, 4))
        check_gradient(lambda t: (log_softmax(t) * np.arange(4.0)).sum(), x)


class TestBackwardSegmentOps:
    def test_segment_sum_grad(self):
        x = rng.normal(size=(6, 3))
        seg = np.array([0, 1, 0, 2, 1, 0])
        check_gradient(lambda t: (segment_sum(t, seg, 3) ** 2).sum(), x)

    def test_segment_mean_grad(self):
        x = rng.normal(size=(5, 2))
        seg = np.array([0, 0, 1, 1, 1])
        check_gradient(lambda t: (segment_mean(t, seg, 2) ** 2).sum(), x)

    def test_segment_softmax_grad_1d(self):
        x = rng.normal(size=(7,))
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        weights = np.arange(7.0)
        check_gradient(
            lambda t: (segment_softmax(t, seg, 3) * weights).sum(), x
        )

    def test_segment_softmax_grad_multihead(self):
        x = rng.normal(size=(5, 2))  # (edges, heads)
        seg = np.array([0, 0, 0, 1, 1])
        weights = rng.normal(size=(5, 2))
        check_gradient(
            lambda t: (segment_softmax(t, seg, 2) * weights).sum(), x
        )

    def test_concat_grad(self):
        x = rng.normal(size=(2, 3))

        def loss(t):
            joined = concat([t, t * 2.0], axis=1)
            return (joined ** 2).sum()

        check_gradient(loss, x)


class TestAccumulation:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3 + x * 4  # dy/dx = 7
        y.backward()
        assert np.isclose(x.grad[0], 7.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2
        b = x * 3
        out = a * b  # 6x^2 -> d/dx = 12x = 18
        out.backward()
        assert np.isclose(x.grad[0], 18.0)

    def test_backward_twice_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        assert np.isclose(x.grad[0], 4.0)

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_stops_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * 5
        assert not y.requires_grad
