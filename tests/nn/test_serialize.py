"""Strictness tests for npz weight archives.

``load_state`` must never silently partial-load: truncated or corrupt
archives, missing/extra keys, and shape mismatches all raise
:class:`SerializeError` with the offending path, and the module's
parameters are untouched afterwards.
"""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    MLP,
    SerializeError,
    Sequential,
    load_state,
    save_state,
)


def _module():
    return Sequential(Linear(6, 6), MLP([6, 8, 2]))


def _snapshot(module):
    return {k: v.copy() for k, v in module.state_dict().items()}


def _assert_untouched(module, before):
    after = module.state_dict()
    assert sorted(after) == sorted(before)
    for name in before:
        assert np.array_equal(after[name], before[name])


class TestStrictLoadState:
    def test_round_trip(self, tmp_path):
        a, b = _module(), _module()
        path = tmp_path / "m.npz"
        save_state(a, path)
        load_state(b, path)
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            assert pa.data.tobytes() == pb.data.tobytes()

    def test_truncated_archive_raises_clearly(self, tmp_path):
        a, b = _module(), _module()
        path = tmp_path / "m.npz"
        save_state(a, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        before = _snapshot(b)
        with pytest.raises(SerializeError, match="cannot read"):
            load_state(b, path)
        _assert_untouched(b, before)

    def test_missing_archive_raises_clearly(self, tmp_path):
        with pytest.raises(SerializeError, match="cannot read"):
            load_state(_module(), tmp_path / "absent.npz")

    def test_missing_keys_raise(self, tmp_path):
        a = _module()
        state = a.state_dict()
        dropped = sorted(state)[0]
        del state[dropped]
        path = tmp_path / "partial.npz"
        np.savez_compressed(str(path), **state)
        b = _module()
        before = _snapshot(b)
        with pytest.raises(SerializeError, match="missing"):
            load_state(b, path)
        _assert_untouched(b, before)

    def test_extra_keys_raise(self, tmp_path):
        a = _module()
        state = a.state_dict()
        state["phantom.weight"] = np.zeros(3, dtype=np.float32)
        path = tmp_path / "extra.npz"
        np.savez_compressed(str(path), **state)
        with pytest.raises(SerializeError, match="extra"):
            load_state(_module(), path)

    def test_shape_mismatch_raises_before_any_copy(self, tmp_path):
        a = _module()
        state = a.state_dict()
        first = sorted(state)[0]
        state[first] = np.zeros((1, 1), dtype=np.float32)
        path = tmp_path / "shapes.npz"
        np.savez_compressed(str(path), **state)
        b = _module()
        before = _snapshot(b)
        with pytest.raises(SerializeError, match="shape"):
            load_state(b, path)
        _assert_untouched(b, before)

    def test_error_names_the_path(self, tmp_path):
        path = tmp_path / "somewhere.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(SerializeError, match="somewhere.npz"):
            load_state(_module(), path)
