"""Central-difference gradient checking utilities (float64)."""

from __future__ import annotations

import numpy as np

from repro.nn import tensor as T


class float64_tensors:
    """Context manager flipping the default dtype to float64."""

    def __enter__(self):
        self._prev = T.DEFAULT_DTYPE
        T.set_default_dtype(np.float64)
        return self

    def __exit__(self, *exc):
        T.set_default_dtype(self._prev)
        return False


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """d fn / d x by central differences; ``fn`` maps ndarray -> scalar."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(build_loss, x: np.ndarray, rtol: float = 1e-5,
                   atol: float = 1e-7) -> None:
    """Assert autodiff and numerical gradients agree.

    ``build_loss(tensor)`` constructs a scalar loss from a Tensor wrapping
    ``x``.  Runs in float64.
    """
    with float64_tensors():
        t = T.Tensor(x.astype(np.float64), requires_grad=True)
        loss = build_loss(t)
        loss.backward()
        analytic = t.grad.copy()

        def scalar_fn(arr: np.ndarray) -> float:
            with T.no_grad():
                return float(build_loss(T.Tensor(arr)).data)

        numeric = numerical_grad(scalar_fn, x.astype(np.float64))
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
