"""Tests for modules, losses, optimizers and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AdamW,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    SGD,
    Sequential,
    Tensor,
    clip_grad_norm,
    cosine_schedule,
    functional as F,
    load_state,
    save_state,
)
from tests.nn.gradcheck import check_gradient

rng = np.random.default_rng(7)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(4, 6)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 6)

    def test_linear_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup(self):
        emb = Embedding(10, 5)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 5)
        assert np.allclose(out.data[0], out.data[1])

    def test_layernorm_normalises(self):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.normal(size=(4, 8)) * 10 + 3))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_grad(self):
        x = rng.normal(size=(3, 6))

        def loss(t):
            mu = t.mean(axis=-1, keepdims=True)
            centered = t - mu
            var = (centered * centered).mean(axis=-1, keepdims=True)
            return ((centered * ((var + 1e-5) ** -0.5)) ** 2).sum()

        check_gradient(loss, x)

    def test_dropout_train_vs_eval(self):
        drop = Dropout(0.5)
        x = Tensor(np.ones((100, 10)))
        out_train = drop(x)
        assert (out_train.data == 0).any()
        drop.eval()
        out_eval = drop(x)
        assert np.allclose(out_eval.data, 1.0)

    def test_dropout_preserves_expectation(self):
        drop = Dropout(0.3, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 50)))
        out = drop(x)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_mlp_forward(self):
        mlp = MLP([4, 8, 2])
        out = mlp(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 2)

    def test_mlp_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_sequential(self):
        net = Sequential(Linear(3, 5), Linear(5, 2))
        assert net(Tensor(np.ones((1, 3)))).shape == (1, 2)


class TestModuleInfrastructure:
    def test_named_parameters_nested(self):
        mlp = MLP([3, 4, 2])
        names = [n for n, _ in mlp.named_parameters()]
        assert any("net.layers.0.weight" in n for n in names)
        assert len(names) == 4  # two Linears x (weight, bias)

    def test_num_parameters(self):
        layer = Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        layer = Linear(2, 2)
        (layer(Tensor(np.ones((1, 2)))).sum()).backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2), Dropout(0.5))
        net.eval()
        assert not net.layers[1].training
        net.train()
        assert net.layers[1].training

    def test_state_dict_round_trip(self):
        a = MLP([3, 5, 2])
        b = MLP([3, 5, 2])
        b.load_state_dict(a.state_dict())
        x = Tensor(rng.normal(size=(2, 3)))
        assert np.allclose(a(x).data, b(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        a = Linear(2, 3)
        b = Linear(3, 3)
        with pytest.raises((KeyError, ValueError)):
            b.load_state_dict(a.state_dict())

    def test_save_load_file(self, tmp_path):
        a = MLP([4, 6, 3])
        path = tmp_path / "model.npz"
        save_state(a, path)
        b = MLP([4, 6, 3])
        load_state(b, path)
        x = Tensor(rng.normal(size=(2, 4)))
        assert np.allclose(a(x).data, b(x).data)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.5, -1.0], [0.0, 1.0, 0.0]]))
        labels = np.array([0, 1])
        loss = F.cross_entropy(logits, labels)
        p = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        p /= p.sum(axis=1, keepdims=True)
        expected = -np.log(p[[0, 1], labels]).mean()
        assert np.isclose(loss.item(), expected, atol=1e-5)

    def test_cross_entropy_grad(self):
        x = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        check_gradient(lambda t: F.cross_entropy(t, labels), x)

    def test_weighted_cross_entropy_prefers_weighted_class(self):
        logits = Tensor(np.zeros((2, 2)))
        labels = np.array([0, 1])
        base = F.cross_entropy(logits, labels).item()
        weighted = F.cross_entropy(logits, labels, weight=np.array([1.0, 1.0])).item()
        assert np.isclose(base, weighted, atol=1e-6)

    def test_bce_with_logits_matches_manual(self):
        x = np.array([0.5, -1.5, 2.0])
        t = np.array([1.0, 0.0, 1.0])
        loss = F.binary_cross_entropy_with_logits(Tensor(x), t)
        p = 1 / (1 + np.exp(-x))
        expected = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert np.isclose(loss.item(), expected, atol=1e-5)

    def test_bce_grad(self):
        x = rng.normal(size=(6,))
        t = (rng.random(6) > 0.5).astype(np.float64)
        check_gradient(lambda z: F.binary_cross_entropy_with_logits(z, t), x)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
        assert F.accuracy(Tensor(logits), np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0], dtype=np.float32)
        p = Parameter(np.zeros(2, dtype=np.float32))

        def loss_fn():
            diff = p - Tensor(target)
            return (diff * diff).sum()

        return p, loss_fn, target

    @pytest.mark.parametrize("make_opt", [
        lambda p: SGD([p], lr=0.1),
        lambda p: SGD([p], lr=0.05, momentum=0.9),
        lambda p: Adam([p], lr=0.3),
        lambda p: AdamW([p], lr=0.3, weight_decay=0.001),
    ])
    def test_converges_on_quadratic(self, make_opt):
        p, loss_fn, target = self._quadratic_problem()
        opt = make_opt(p)
        for _ in range(200):
            opt.zero_grad()
            loss = loss_fn()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, target, atol=0.05)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.full(3, 5.0, dtype=np.float32))
        opt = AdamW([p], lr=0.01, weight_decay=0.5)
        # No loss gradient at all: pure decay
        for _ in range(10):
            p.grad = np.zeros_like(p.data)
            opt.step()
        assert np.all(np.abs(p.data) < 5.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, abs=1e-5)

    def test_clip_noop_under_limit(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])


class TestSchedule:
    def test_warmup_rises(self):
        lrs = [cosine_schedule(s, 100, 1.0, warmup=10) for s in range(10)]
        assert lrs == sorted(lrs)
        assert lrs[-1] <= 1.0

    def test_cosine_decays_to_floor(self):
        end = cosine_schedule(99, 100, 1.0, warmup=0, floor=0.1)
        assert end == pytest.approx(0.1, abs=0.01)

    def test_peak_after_warmup(self):
        assert cosine_schedule(10, 100, 1.0, warmup=10) == pytest.approx(1.0, abs=0.02)
