"""Tests for the fused training kernels.

Three layers of guarantees:

- *gradcheck*: every fused op's analytic gradient matches central
  differences in float64;
- *bitwise parity*: on random shapes and dtypes, forward values and
  accumulated gradients of the fused ops equal the composed-op
  reference (``use_fast_math(False)``) byte for byte — the property
  the training overhaul rests on;
- *exact scatter*: the round-decomposed ``scatter_add_exact`` equals
  ``np.add.at`` bitwise for duplicate-heavy index patterns.
"""

import numpy as np
import pytest

from gradcheck import check_gradient, float64_tensors

from repro.nn import LayerNorm, functional as F
from repro.nn import tensor as T
from repro.nn.tensor import (
    Tensor,
    fused_layer_norm,
    scatter_add_exact,
    scatter_rounds,
    type_sort,
    typed_linear,
    use_fast_math,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# scatter_add_exact
# ---------------------------------------------------------------------------


class TestScatterAddExact:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("shape", [(13,), (13, 5), (13, 3, 4)])
    def test_matches_add_at_bitwise(self, seed, shape):
        rng = _rng(seed)
        idx = rng.integers(0, 6, size=shape[0])
        values = rng.normal(size=shape).astype(np.float32)
        expect = np.zeros((6,) + shape[1:], dtype=np.float32)
        np.add.at(expect, idx, values)
        got = np.zeros_like(expect)
        scatter_add_exact(got, idx, values)
        assert got.tobytes() == expect.tobytes()

    def test_unique_indices_single_round(self):
        idx = np.array([4, 2, 0, 3])
        rounds = scatter_rounds(idx)
        assert len(rounds) == 1 and rounds[0][1] is None

    def test_heavy_duplicates_fall_back(self):
        idx = np.zeros(100, dtype=np.int64)
        assert scatter_rounds(idx, max_rounds=64) is None
        # the fallback still matches add.at, both when computed here
        # (rounds=None) and via the cached verdict (rounds=False)
        values = _rng(1).normal(size=(100, 3)).astype(np.float32)
        expect = np.zeros((2, 3), dtype=np.float32)
        np.add.at(expect, idx, values)
        for rounds in (None, False):
            got = np.zeros_like(expect)
            scatter_add_exact(got, idx, values, rounds=rounds)
            assert got.tobytes() == expect.tobytes()

    def test_empty(self):
        target = np.ones((3, 2), dtype=np.float32)
        scatter_add_exact(target, np.zeros(0, dtype=np.int64),
                          np.zeros((0, 2), dtype=np.float32))
        assert (target == 1.0).all()

    def test_occurrence_order_preserved(self):
        # catastrophic-cancellation probe: only occurrence-order
        # summation reproduces add.at exactly
        idx = np.array([0, 0, 0, 0])
        values = np.array([1e8, 1.0, -1e8, 1.0], dtype=np.float32)
        expect = np.zeros(1, dtype=np.float32)
        np.add.at(expect, idx, values)
        got = np.zeros(1, dtype=np.float32)
        scatter_add_exact(got, idx, values)
        assert got.tobytes() == expect.tobytes()


# ---------------------------------------------------------------------------
# typed_linear
# ---------------------------------------------------------------------------


def _composed_typed_linear(x, weight, bias, type_ids):
    """The seed composed path: per-group gather/matmul/concat/unpermute."""
    from repro.nn.tensor import concat

    order, sorted_types, group_starts, group_ends = type_sort(
        np.asarray(type_ids, dtype=np.int64))
    pieces = []
    for start, end in zip(group_starts, group_ends):
        t = int(sorted_types[start])
        rows = order[start:end]
        pieces.append(x[rows] @ weight[t] + bias[t])
    out_sorted = concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
    inverse = np.empty_like(order)
    inverse[order] = np.arange(len(order))
    return out_sorted[inverse]


class TestTypedLinear:
    def test_gradcheck_x(self):
        rng = _rng(3)
        type_ids = rng.integers(0, 3, size=7)
        w = rng.normal(size=(3, 4, 5))
        b = rng.normal(size=(3, 5))

        def loss(t):
            with float64_tensors():
                out = typed_linear(t, T.Tensor(w), T.Tensor(b), type_ids)
            return (out * out).sum()

        check_gradient(loss, rng.normal(size=(7, 4)))

    def test_gradcheck_weight(self):
        rng = _rng(4)
        type_ids = rng.integers(0, 3, size=7)
        x = rng.normal(size=(7, 4))
        b = rng.normal(size=(3, 5))

        def loss(t):
            with float64_tensors():
                out = typed_linear(T.Tensor(x), t, T.Tensor(b), type_ids)
            return (out * out).sum()

        check_gradient(loss, rng.normal(size=(3, 4, 5)))

    def test_gradcheck_bias(self):
        rng = _rng(5)
        type_ids = rng.integers(0, 3, size=7)
        x = rng.normal(size=(7, 4))
        w = rng.normal(size=(3, 4, 5))

        def loss(t):
            with float64_tensors():
                out = typed_linear(T.Tensor(x), T.Tensor(w), t, type_ids)
            return (out * out).sum()

        check_gradient(loss, rng.normal(size=(3, 5)))

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bitwise_parity_with_composed(self, seed, dtype):
        rng = _rng(seed)
        n, din, dout, ntypes = 11, 6, 4, 5
        prev = T.DEFAULT_DTYPE
        T.set_default_dtype(dtype)
        try:
            type_ids = rng.integers(0, ntypes, size=n)
            xd = rng.normal(size=(n, din)).astype(dtype)
            wd = rng.normal(size=(ntypes, din, dout)).astype(dtype)
            bd = rng.normal(size=(ntypes, dout)).astype(dtype)
            upstream = rng.normal(size=(n, dout)).astype(dtype)

            x1, w1, b1 = (Tensor(xd, requires_grad=True),
                          Tensor(wd, requires_grad=True),
                          Tensor(bd, requires_grad=True))
            fused = typed_linear(x1, w1, b1, type_ids)
            fused.backward(upstream)

            x2, w2, b2 = (Tensor(xd, requires_grad=True),
                          Tensor(wd, requires_grad=True),
                          Tensor(bd, requires_grad=True))
            composed = _composed_typed_linear(x2, w2, b2, type_ids)
            composed.backward(upstream)

            assert fused.data.tobytes() == composed.data.tobytes()
            assert x1.grad.tobytes() == x2.grad.tobytes()
            assert w1.grad.tobytes() == w2.grad.tobytes()
            assert b1.grad.tobytes() == b2.grad.tobytes()
        finally:
            T.set_default_dtype(prev)

    def test_out_shape_folds_reshape(self):
        rng = _rng(9)
        type_ids = rng.integers(0, 3, size=6)
        x = Tensor(rng.normal(size=(6, 4)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4, 6)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(np.zeros((3, 6), dtype=np.float32), requires_grad=True)
        flat = typed_linear(x, w, b, type_ids)
        split = typed_linear(x, w, b, type_ids, out_shape=(6, 2, 3))
        assert split.shape == (6, 2, 3)
        assert split.data.tobytes() == flat.data.tobytes()
        split.backward(np.ones((6, 2, 3), dtype=np.float32))
        x2 = Tensor(x.data, requires_grad=True)
        flat2 = typed_linear(x2, Tensor(w.data, requires_grad=True),
                             Tensor(b.data, requires_grad=True), type_ids)
        flat2.backward(np.ones((6, 6), dtype=np.float32))
        assert x.grad.tobytes() == x2.grad.tobytes()


# ---------------------------------------------------------------------------
# fused LayerNorm
# ---------------------------------------------------------------------------


class TestFusedLayerNorm:
    def test_gradcheck_x(self):
        rng = _rng(6)

        def loss(t):
            with float64_tensors():
                g = T.Tensor(np.ones(5, dtype=np.float64))
                b = T.Tensor(np.zeros(5, dtype=np.float64))
                out = fused_layer_norm(t, g, b, 1e-5)
            return (out * out).sum()

        check_gradient(loss, rng.normal(size=(4, 5)), rtol=1e-4,
                       atol=1e-6)

    def test_gradcheck_gamma(self):
        rng = _rng(7)
        x = rng.normal(size=(4, 5))

        def loss(t):
            with float64_tensors():
                b = T.Tensor(np.zeros(5, dtype=np.float64))
                out = fused_layer_norm(T.Tensor(x), t, b, 1e-5)
            return (out * out).sum()

        check_gradient(loss, rng.normal(size=5))

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("shape", [(7, 4), (3, 9), (1, 6)])
    def test_bitwise_parity_with_composed(self, seed, shape):
        rng = _rng(seed)
        xd = rng.normal(size=shape).astype(np.float32)
        upstream = rng.normal(size=shape).astype(np.float32)

        def run(fast):
            with use_fast_math(fast):
                ln = LayerNorm(shape[-1])
                x = Tensor(xd, requires_grad=True)
                out = ln(x)
                out.backward(upstream)
                return (out.data, x.grad, ln.gamma.grad, ln.beta.grad)

        fused = run(True)
        composed = run(False)
        for a, b in zip(fused, composed):
            assert a.tobytes() == b.tobytes()


# ---------------------------------------------------------------------------
# fused cross-entropy
# ---------------------------------------------------------------------------


class TestFusedCrossEntropy:
    def test_gradcheck(self):
        rng = _rng(8)
        labels = rng.integers(0, 4, size=6)

        def loss(t):
            with float64_tensors(), use_fast_math(True):
                return F.cross_entropy(t, labels)

        check_gradient(loss, rng.normal(size=(6, 4)))

    def test_gradcheck_weighted(self):
        rng = _rng(9)
        labels = rng.integers(0, 3, size=5)
        weight = np.array([0.2, 1.0, 2.5])

        def loss(t):
            with float64_tensors(), use_fast_math(True):
                return F.cross_entropy(t, labels, weight=weight)

        check_gradient(loss, rng.normal(size=(5, 3)), rtol=1e-4,
                       atol=1e-6)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("weighted", [False, True])
    def test_bitwise_parity_with_composed(self, seed, weighted):
        rng = _rng(seed)
        b, c = 9, 3
        logits = rng.normal(size=(b, c)).astype(np.float32) * 4.0
        labels = rng.integers(0, c, size=b)
        weight = (np.array([0.5, 1.5, 2.0], dtype=np.float32)
                  if weighted else None)

        def run(fast):
            with use_fast_math(fast):
                t = Tensor(logits, requires_grad=True)
                loss = F.cross_entropy(t, labels, weight=weight)
                loss.backward()
                return np.asarray(loss.data), t.grad

        fused_loss, fused_grad = run(True)
        composed_loss, composed_grad = run(False)
        assert fused_loss.tobytes() == composed_loss.tobytes()
        assert fused_grad.tobytes() == composed_grad.tobytes()
