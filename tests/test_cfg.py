"""Tests for CFG construction."""

import networkx as nx
import pytest

from repro.cfg import EdgeLabel, build_cfg
from repro.cfront import parse_statements, parse_loop
from repro.cfront.nodes import CallExpr, ForStmt, WhileStmt


def cfg_of(source):
    return build_cfg(parse_statements(source))


def labels_between(cfg, src_role, dst_role):
    roles = {n.nid: n.role for n in cfg.nodes}
    return [
        e.label
        for e in cfg.edges
        if roles[e.src] == src_role and roles[e.dst] == dst_role
    ]


class TestStraightLine:
    def test_sequential_statements_chain(self):
        cfg = cfg_of("a = 1; b = 2; c = 3;")
        # entry -> a -> b -> c -> exit
        stmt_ids = [n.nid for n in cfg.nodes if n.role == "stmt"]
        assert len(stmt_ids) == 3
        g = cfg.to_networkx()
        assert nx.has_path(g, cfg.entry, cfg.exit)
        assert g.number_of_edges() == 4

    def test_empty_block(self):
        cfg = cfg_of("")
        g = cfg.to_networkx()
        assert g.has_edge(cfg.entry, cfg.exit)

    def test_all_nodes_reachable(self):
        cfg = cfg_of("x = 1; if (x) y = 2; else y = 3; z = 4;")
        assert cfg.reachable_from_entry() >= {n.nid for n in cfg.nodes if n.role != "exit"}


class TestIf:
    def test_if_true_false_edges(self):
        cfg = cfg_of("if (a) x = 1; else x = 2;")
        cond = next(n for n in cfg.nodes if n.role == "cond")
        out_labels = {label for _, label in cfg.succ(cond.nid)}
        assert EdgeLabel.TRUE in out_labels and EdgeLabel.FALSE in out_labels

    def test_if_without_else_falls_through(self):
        cfg = cfg_of("if (a) x = 1; y = 2;")
        cond = next(n for n in cfg.nodes if n.role == "cond")
        # FALSE edge must reach the following statement
        false_dsts = [d for d, lab in cfg.succ(cond.nid) if lab is EdgeLabel.FALSE]
        assert len(false_dsts) == 1
        assert cfg.nodes[false_dsts[0]].role == "stmt"


class TestLoops:
    def test_for_loop_shape(self):
        cfg = cfg_of("for (i = 0; i < n; i++) s += i;")
        roles = [n.role for n in cfg.nodes]
        assert "init" in roles and "cond" in roles and "inc" in roles
        assert len(cfg.back_edges()) == 1

    def test_for_back_edge_targets_cond(self):
        cfg = cfg_of("for (i = 0; i < n; i++) s += i;")
        cond = next(n for n in cfg.nodes if n.role == "cond")
        back = cfg.back_edges()[0]
        assert back.dst == cond.nid

    def test_while_loop_back_edge(self):
        cfg = cfg_of("while (x > 0) x--;")
        assert len(cfg.back_edges()) == 1

    def test_do_while_executes_body_first(self):
        cfg = cfg_of("do x--; while (x);")
        # entry's successor is the body statement, not the condition
        entry_succs = [d for d, _ in cfg.succ(cfg.entry)]
        assert cfg.nodes[entry_succs[0]].role == "stmt"

    def test_infinite_for(self):
        cfg = cfg_of("for (;;) x++;")
        assert len(cfg.back_edges()) == 1

    def test_nested_loops_two_back_edges(self):
        cfg = cfg_of("for (i = 0; i < n; i++) for (j = 0; j < n; j++) s++;")
        assert len(cfg.back_edges()) == 2

    def test_break_exits_loop(self):
        cfg = cfg_of("while (1) { if (a) break; x++; } y = 1;")
        # The break node's successor should be the final statement.
        brk = next(n for n in cfg.nodes if n.kind == "BreakStmt")
        dsts = [d for d, _ in cfg.succ(brk.nid)]
        assert len(dsts) == 1
        assert cfg.nodes[dsts[0]].ast is not None

    def test_continue_reaches_increment(self):
        cfg = cfg_of("for (i = 0; i < n; i++) { if (a) continue; x++; }")
        cont = next(n for n in cfg.nodes if n.kind == "ContinueStmt")
        dsts = [d for d, _ in cfg.succ(cont.nid)]
        assert cfg.nodes[dsts[0]].role == "inc"

    def test_loop_condition_false_leaves_loop(self):
        cfg = cfg_of("for (i = 0; i < n; i++) s++;\nt = 1;")
        cond = next(n for n in cfg.nodes if n.role == "cond")
        false_dst = next(d for d, lab in cfg.succ(cond.nid) if lab is EdgeLabel.FALSE)
        assert cfg.nodes[false_dst].role == "stmt"


class TestCalls:
    def test_call_gets_cfg_node(self):
        cfg = cfg_of("x = f(a);")
        call = next(n for n in cfg.nodes if n.role == "call")
        assert isinstance(call.ast, CallExpr)
        assert labels_between(cfg, "stmt", "call") == [EdgeLabel.CALL]

    def test_call_in_loop_condition(self):
        cfg = cfg_of("while (more(x)) x = next(x);")
        calls = [n for n in cfg.nodes if n.role == "call"]
        assert len(calls) == 2

    def test_nested_calls_each_get_node(self):
        cfg = cfg_of("y = f(g(x));")
        assert sum(1 for n in cfg.nodes if n.role == "call") == 2


class TestReturnGotoSwitch:
    def test_return_edges_to_exit(self):
        cfg = cfg_of("if (a) return 1; x = 2;")
        ret = next(n for n in cfg.nodes if n.kind == "ReturnStmt")
        assert (cfg.exit, EdgeLabel.NEXT) in cfg.succ(ret.nid)

    def test_goto_connects_to_label(self):
        cfg = cfg_of("top: x++; if (x < 10) goto top;")
        gt = next(n for n in cfg.nodes if n.kind == "GotoStmt")
        lbl = next(n for n in cfg.nodes if n.kind == "LabelStmt")
        assert (lbl.nid, EdgeLabel.NEXT) in cfg.succ(gt.nid)

    def test_switch_cases_from_head(self):
        cfg = cfg_of("switch (x) { case 1: a = 1; break; case 2: a = 2; break; }")
        cond = next(n for n in cfg.nodes if n.role == "cond")
        true_dsts = [d for d, lab in cfg.succ(cond.nid) if lab is EdgeLabel.TRUE]
        assert len(true_dsts) == 2

    def test_switch_without_default_falls_through(self):
        cfg = cfg_of("switch (x) { case 1: a = 1; } b = 2;")
        cond = next(n for n in cfg.nodes if n.role == "cond")
        false_edges = [lab for _, lab in cfg.succ(cond.nid) if lab is EdgeLabel.FALSE]
        assert false_edges


class TestLoopLevelCFG:
    """CFGs built on single loop statements (the aug-AST use case)."""

    def test_paper_listing1(self):
        loop = parse_loop(
            "for (i = 0; i < 30000000; i++)\n"
            "    error = error + fabs(a[i] - a[i+1]);"
        )
        cfg = build_cfg(loop)
        kinds = [n.kind for n in cfg.nodes]
        assert "CallExpr" in kinds  # fabs is a CFG node (Figure 3's f1)
        assert len(cfg.back_edges()) == 1

    def test_ast_nodes_property(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += f(i);")
        cfg = build_cfg(loop)
        shared = cfg.ast_nodes
        assert all(any(n is m for m in loop.walk()) for n in shared)

    def test_node_for_lookup(self):
        loop = parse_loop("for (i = 0; i < n; i++) s += i;")
        cfg = build_cfg(loop)
        assert cfg.node_for(loop.cond) is not None
        assert cfg.node_for(loop) is None  # the loop itself is not a CFG node
