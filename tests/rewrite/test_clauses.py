"""Clause synthesis: analysis-grounded clause lists for one loop."""

import pytest

from repro.cfront import parse_loop
from repro.rewrite import ClausePlan, PlanError, plan_clauses


def plan(source, live_out=()):
    return plan_clauses(parse_loop(source), frozenset(live_out))


class TestReductions:
    def test_sum_reduction(self):
        p = plan("for (i = 0; i < n; i++) s += a[i];")
        assert p.reductions == (("+", "s"),)
        assert "reduction(+:s)" in p.pragma()

    def test_product_reduction(self):
        p = plan("for (i = 0; i < n; i++) s *= a[i];")
        assert p.reductions == (("*", "s"),)

    def test_two_reductions_same_op_share_clause(self):
        p = plan("for (i = 0; i < n; i++) { s += a[i]; t += b[i]; }")
        assert p.reductions == (("+", "s"), ("+", "t"))
        assert "reduction(+:s, t)" in p.pragma()

    def test_mixed_op_reductions_get_separate_clauses(self):
        p = plan("for (i = 0; i < n; i++) { s += a[i]; p *= b[i]; }")
        clauses = p.clauses()
        assert "reduction(*:p)" in clauses
        assert "reduction(+:s)" in clauses

    def test_reduction_var_not_firstprivate(self):
        p = plan("for (i = 0; i < n; i++) s += a[i];")
        assert "s" not in p.firstprivate

    def test_conditional_reduction_accepted(self):
        p = plan("for (i = 0; i < n; i++) if (a[i] > 0) s += a[i];")
        assert p.reductions == (("+", "s"),)

    def test_count_update_is_reduction(self):
        p = plan("for (i = 0; i < n; i++) if (a[i] > 0) count++;")
        assert p.reductions == (("+", "count"),)


class TestPrivatization:
    def test_write_first_scalar_is_private(self):
        p = plan("for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }")
        assert p.private == ("t",)
        assert "private(t)" in p.pragma()

    def test_live_out_privatizable_becomes_lastprivate(self):
        p = plan("for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }",
                 live_out={"t"})
        assert p.lastprivate == ("t",)
        assert p.private == ()

    def test_block_scoped_decl_needs_no_clause(self):
        p = plan("for (i = 0; i < n; i++) { int t = a[i]; b[i] = t; }")
        assert "t" not in p.private
        assert "t" in p.local_decls

    def test_live_out_induction_var_is_lastprivate(self):
        p = plan("for (i = 0; i < n; i++) a[i] = i;", live_out={"i"})
        assert "i" in p.lastprivate

    def test_dead_induction_var_needs_no_clause(self):
        p = plan("for (i = 0; i < n; i++) a[i] = i;")
        assert "i" not in p.lastprivate
        assert "i" not in p.private

    def test_inner_loop_var_privatized_when_declared_outside(self):
        p = plan("for (i = 0; i < n; i++)"
                 "  for (j = 0; j < m; j++) a[i][j] = 0;")
        assert "j" in p.inner_vars
        assert "j" in p.private

    def test_inner_loop_var_declared_inside_needs_no_clause(self):
        p = plan("for (i = 0; i < n; i++)"
                 "  for (int j = 0; j < m; j++) a[i][j] = 0;")
        assert "j" not in p.private


class TestFirstprivate:
    def test_read_only_scalar_is_firstprivate(self):
        p = plan("for (i = 0; i < n; i++) y[i] = alpha * x[i];")
        assert "alpha" in p.firstprivate

    def test_header_only_bound_needs_no_clause(self):
        # the bound is read once at region entry; a shared read-only
        # scalar referenced nowhere in the body needs no clause
        p = plan("for (i = 0; i < n; i++) a[i] = 0;")
        assert p.firstprivate == ()

    def test_array_bases_never_firstprivate(self):
        p = plan("for (i = 0; i < n; i++) y[i] = x[i];")
        assert "x" not in p.firstprivate
        assert "y" not in p.firstprivate

    def test_induction_var_never_firstprivate(self):
        p = plan("for (i = 0; i < n; i++) a[i] = i + 1;")
        assert "i" not in p.firstprivate


class TestRefusals:
    def test_non_canonical_while(self):
        with pytest.raises(PlanError) as exc:
            plan("while (n > 0) { n = n - 1; }")
        assert exc.value.code == "non-canonical"

    def test_non_canonical_break(self):
        with pytest.raises(PlanError) as exc:
            plan("for (i = 0; i < n; i++) if (a[i]) break;")
        assert exc.value.code == "non-canonical"

    def test_shared_scalar_write(self):
        with pytest.raises(PlanError) as exc:
            plan("for (i = 0; i < n; i++) s = s * a[i] + 1;")
        assert exc.value.code == "shared-scalar"
        assert "s" in exc.value.detail

    def test_read_then_written_scalar_is_shared(self):
        with pytest.raises(PlanError) as exc:
            plan("for (i = 0; i < n; i++) { b[i] = t; t = a[i]; }")
        assert exc.value.code == "shared-scalar"


class TestRendering:
    def test_pragma_prefix(self):
        p = plan("for (i = 0; i < n; i++) a[i] = 0;")
        assert p.pragma().startswith("#pragma omp parallel for")

    def test_bare_parallel_for_when_no_clauses_needed(self):
        p = plan("for (i = 0; i < 8; i++) a[i] = 0;")
        assert p.pragma() == "#pragma omp parallel for"

    def test_clause_lists_are_sorted(self):
        p = plan("for (i = 0; i < n; i++)"
                 "  { z = a[i]; y = b[i]; c[i] = z + y; }")
        assert list(p.private) == sorted(p.private)

    def test_plan_is_deterministic(self):
        src = ("for (i = 0; i < n; i++)"
               "  { t = a[i]; s += t * beta; b[i] = t; }")
        assert plan(src).pragma() == plan(src).pragma()

    def test_plan_is_frozen(self):
        p = plan("for (i = 0; i < n; i++) a[i] = 0;")
        assert isinstance(p, ClausePlan)
        with pytest.raises(AttributeError):
            p.var = "j"

    def test_precomputed_deps_accepted(self):
        from repro.tools.deps import analyze_loop

        loop = parse_loop("for (i = 0; i < n; i++) s += a[i];")
        deps = analyze_loop(loop, conditional_reductions=True)
        p = plan_clauses(loop, frozenset(), deps=deps)
        assert p.reductions == (("+", "s"),)
