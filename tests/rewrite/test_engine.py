"""The rewrite pass end to end: suggestions in, transformed C out."""

import pytest

from repro.cfront import parse_loop, parse_source, unparse
from repro.rewrite import (
    ACCEPT_CODES,
    REFUSAL_CODES,
    FileRewrite,
    LoopRewrite,
    rewrite_file,
    rewrite_loop,
)
from repro.suggest import Suggestion

SUM_LOOP = "for (i = 0; i < n; i++) s += a[i];"
PREFIX_LOOP = "for (i = 1; i < n; i++) a[i] = a[i] + a[i - 1];"


def suggestion(loop_source, parallel=True, rationale="test"):
    return Suggestion(loop_source=loop_source, parallel=parallel,
                      pragma="#pragma omp parallel for" if parallel else None,
                      clause_families=(), rationale=rationale)


class FakeFileSuggestions:
    """Duck-typed stand-in for serve.pipeline.FileSuggestions."""

    def __init__(self, suggestions, error=None):
        self.suggestions = suggestions
        self.error = error


class TestRewriteLoop:
    def test_accepts_and_attaches_pragma(self):
        r = rewrite_loop(SUM_LOOP)
        assert r.accepted and r.code == "verified"
        assert r.pragma == "#pragma omp parallel for reduction(+:s)"
        assert r.rewritten.startswith("#pragma omp parallel for")

    def test_rewritten_loop_reparses(self):
        r = rewrite_loop(SUM_LOOP)
        loop = parse_loop(r.rewritten)
        assert loop.pragmas == [r.pragma.lstrip("#")]

    def test_refuses_divergent_loop(self):
        r = rewrite_loop(PREFIX_LOOP)
        assert not r.accepted and r.code == "divergence"
        assert r.pragma is None and r.rewritten is None

    def test_unparseable_snippet(self):
        r = rewrite_loop("for (i = 0; i <")
        assert not r.accepted and r.code == "unparseable"

    def test_verify_false_accepts_unchecked(self):
        r = rewrite_loop(PREFIX_LOOP, verify=False)
        assert r.accepted and r.code == "unverified"

    def test_existing_pragma_replaced(self):
        r = rewrite_loop("#pragma omp parallel\n" + SUM_LOOP)
        assert r.accepted
        assert r.rewritten.count("#pragma") == 1
        assert "reduction(+:s)" in r.rewritten

    def test_codes_are_registered(self):
        assert rewrite_loop(SUM_LOOP).code in ACCEPT_CODES
        assert rewrite_loop(PREFIX_LOOP).code in REFUSAL_CODES


class TestRewriteFile:
    SOURCE = (
        "double a[64];\n"
        "double s;\n"
        "void f(int n)\n"
        "{\n"
        "    int i;\n"
        "    for (i = 0; i < n; i++)\n"
        "        s += a[i];\n"
        "    for (i = 1; i < n; i++)\n"
        "        a[i] = a[i] + a[i - 1];\n"
        "}\n"
    )

    def _suggestions(self):
        tu = parse_source(self.SOURCE)
        loops = [s for fn in tu.functions()
                 for s in fn.body.stmts if hasattr(s, "init")]
        return [suggestion(unparse(loop)) for loop in loops]

    def test_accept_and_refuse_in_one_file(self):
        fr = rewrite_file("f.c", self.SOURCE,
                          FakeFileSuggestions(self._suggestions()))
        assert [r.code for r in fr.rewrites] == ["verified", "divergence"]
        assert fr.n_accepted == 1 and fr.n_refused == 1

    def test_rewritten_source_reparses_with_pragma(self):
        fr = rewrite_file("f.c", self.SOURCE,
                          FakeFileSuggestions(self._suggestions()))
        tu = parse_source(fr.rewritten_source)
        assert "reduction(+:s)" in fr.rewritten_source
        # the refused loop keeps its original pragma-free text
        assert fr.rewritten_source.count("#pragma") == 1
        assert unparse(tu) == fr.rewritten_source

    def test_not_parallel_passthrough(self):
        suggs = self._suggestions()
        suggs[0] = suggestion(suggs[0].loop_source, parallel=False,
                              rationale="model said no")
        fr = rewrite_file("f.c", self.SOURCE, FakeFileSuggestions(suggs))
        assert fr.rewrites[0].code == "not-parallel"
        assert fr.rewrites[0].detail == "model said no"
        assert fr.n_refused == 1        # not-parallel is not a refusal

    def test_count_mismatch_refuses_misaligned(self):
        suggs = self._suggestions()[:1]
        fr = rewrite_file("f.c", self.SOURCE, FakeFileSuggestions(suggs))
        assert [r.code for r in fr.rewrites] == ["misaligned"]
        assert "1 suggestions" in fr.rewrites[0].detail

    def test_source_mismatch_refuses_misaligned(self):
        suggs = list(reversed(self._suggestions()))
        fr = rewrite_file("f.c", self.SOURCE, FakeFileSuggestions(suggs))
        assert all(r.code == "misaligned" for r in fr.rewrites)

    def test_frontend_error_passthrough(self):
        fr = rewrite_file("bad.c", self.SOURCE,
                          FakeFileSuggestions([], error="lex error"))
        assert fr.error == "lex error"
        assert fr.rewrites == [] and fr.rewritten_source is None

    def test_unparseable_source(self):
        fr = rewrite_file("bad.c", "void f( {", FakeFileSuggestions([]))
        assert fr.error is not None

    def test_verify_false_marks_unverified(self):
        fr = rewrite_file("f.c", self.SOURCE,
                          FakeFileSuggestions(self._suggestions()),
                          verify=False)
        assert [r.code for r in fr.rewrites] == ["unverified",
                                                 "unverified"]


class TestWireShapes:
    def test_loop_rewrite_dict_round_trip(self):
        r = rewrite_loop(SUM_LOOP)
        assert LoopRewrite.from_dict(r.to_dict()) == r

    def test_file_rewrite_payload_round_trip(self):
        fr = rewrite_file(
            "f.c", TestRewriteFile.SOURCE,
            FakeFileSuggestions(TestRewriteFile()._suggestions()))
        revived = FileRewrite.from_payload("f.c", fr.to_payload())
        assert revived == fr

    def test_payload_is_json_safe(self):
        import json

        fr = rewrite_file(
            "f.c", TestRewriteFile.SOURCE,
            FakeFileSuggestions(TestRewriteFile()._suggestions()))
        assert (FileRewrite.from_payload(
                    "f.c", json.loads(json.dumps(fr.to_payload())))
                == fr)

    def test_error_payload_round_trip(self):
        fr = FileRewrite(name="x.c", error="boom")
        assert FileRewrite.from_payload("x.c", fr.to_payload()) == fr


@pytest.mark.parametrize("code", REFUSAL_CODES)
def test_refusal_codes_are_kebab_case(code):
    assert code == code.lower()
    assert " " not in code
