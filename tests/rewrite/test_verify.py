"""Differential verification: sequential vs simulated-parallel."""

import pytest

from repro.cfront import parse_loop
from repro.rewrite import VerifyConfig, plan_clauses, verify_loop
from repro.rewrite.verify import _iteration_order


def verdict(source, live_out=(), config=None):
    loop = parse_loop(source)
    plan = plan_clauses(loop, frozenset(live_out))
    return verify_loop(loop, plan, config)


class TestAccepts:
    def test_independent_elementwise(self):
        v = verdict("for (i = 0; i < n; i++) a[i] = 2 * i;")
        assert v.ok and v.code == "verified"

    def test_sum_reduction(self):
        v = verdict("for (i = 0; i < n; i++) s += a[i];")
        assert v.ok

    def test_product_reduction(self):
        v = verdict("for (i = 0; i < n; i++) s *= a[i];")
        assert v.ok

    def test_subtraction_reduction(self):
        # -= combines under + with negated contributions
        v = verdict("for (i = 0; i < n; i++) s -= a[i];")
        assert v.ok

    def test_conditional_reduction(self):
        v = verdict("for (i = 0; i < n; i++) if (a[i] > 0) s += a[i];")
        assert v.ok

    def test_privatized_temporary(self):
        v = verdict("for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }")
        assert v.ok

    def test_lastprivate_temporary(self):
        v = verdict("for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t; }",
                    live_out={"t"})
        assert v.ok

    def test_lastprivate_induction_var(self):
        v = verdict("for (i = 0; i < n; i++) a[i] = i;", live_out={"i"})
        assert v.ok

    def test_firstprivate_scalar(self):
        v = verdict("for (i = 0; i < n; i++) y[i] = alpha * x[i];")
        assert v.ok

    def test_nested_loop(self):
        v = verdict("for (i = 0; i < n; i++)"
                    "  for (j = 0; j < 4; j++) a[i][j] = i + j;")
        assert v.ok

    def test_continue_in_body(self):
        v = verdict("for (i = 0; i < n; i++)"
                    "  { if (a[i] < 0) continue; b[i] = a[i]; }")
        assert v.ok

    def test_stride_two(self):
        v = verdict("for (i = 0; i < n; i += 2) a[i] = i;")
        assert v.ok

    def test_downward_loop(self):
        v = verdict("for (i = 8; i > 0; i--) a[i] = i;")
        assert v.ok


class TestDivergence:
    def test_prefix_recurrence(self):
        v = verdict("for (i = 1; i < n; i++) a[i] = a[i] + a[i - 1];")
        assert not v.ok and v.code == "divergence"

    def test_suffix_recurrence(self):
        v = verdict("for (i = 0; i < n; i++) a[i] = a[i + 1] + 1;")
        assert not v.ok and v.code == "divergence"

    def test_divergence_detail_names_schedule(self):
        v = verdict("for (i = 1; i < n; i++) a[i] = a[i] + a[i - 1];")
        assert "schedule" in v.detail
        assert "seed" in v.detail

    def test_misplanned_private_read_caught_by_poison(self):
        # hand-build a plan that wrongly privatizes a read-before-write
        # scalar: the poison value flows into b and must be refused
        from repro.rewrite.clauses import ClausePlan

        loop = parse_loop(
            "for (i = 0; i < n; i++) { b[i] = t; t = a[i]; }")
        bad = ClausePlan(var="i", reductions=(), private=("t",),
                         firstprivate=(), lastprivate=(),
                         local_decls=(), inner_vars=())
        v = verify_loop(loop, bad)
        assert not v.ok and v.code == "divergence"

    def test_unprivatized_shared_scalar_diverges(self):
        # a plan that leaves the temporary fully shared: its post-loop
        # value depends on which iteration ran last
        from repro.rewrite.clauses import ClausePlan

        loop = parse_loop(
            "for (i = 0; i < n; i++) { t = a[i]; b[i] = t + 1; }")
        bad = ClausePlan(var="i", reductions=(), private=(),
                         firstprivate=(), lastprivate=(),
                         local_decls=(), inner_vars=())
        v = verify_loop(loop, bad)
        assert not v.ok and v.code == "divergence"

    def test_lastprivate_plan_for_written_temporary_is_correct(self):
        # the same loop with the temporary lastprivate IS the OpenMP
        # semantics the sequential loop has — must verify
        from repro.rewrite.clauses import ClausePlan

        loop = parse_loop(
            "for (i = 0; i < n; i++) { t = a[i]; b[i] = t + 1; }")
        good = ClausePlan(var="i", reductions=(), private=(),
                          firstprivate=(), lastprivate=("t",),
                          local_decls=(), inner_vars=())
        assert verify_loop(loop, good).ok

    def test_iteration_space_not_fixed_at_entry(self):
        # the body shrinks the bound: the sequential loop stops after
        # one trip, while the entry-enumerated space has two
        from repro.rewrite.clauses import ClausePlan

        loop = parse_loop("for (i = 0; i < n + 2; i++) n = n - 1;")
        bad = ClausePlan(var="i", reductions=(), private=("n",),
                         firstprivate=(), lastprivate=(),
                         local_decls=(), inner_vars=())
        v = verify_loop(loop, bad)
        assert not v.ok and v.code == "divergence"
        assert "not fixed" in v.detail


class TestRefusalCodes:
    def test_unsupported_construct_on_unknown_call(self):
        v = verdict("for (i = 0; i < n; i++) process(a[i]);")
        assert not v.ok and v.code == "unsupported-construct"

    def test_budget_exceeded(self):
        cfg = VerifyConfig(max_steps=5)
        v = verdict("for (i = 0; i < n; i++) a[i] = i;", config=cfg)
        assert not v.ok and v.code == "budget-exceeded"

    def test_no_iterations_on_zero_trip(self):
        v = verdict("for (i = 0; i < 0; i++) a[i] = i;")
        assert not v.ok and v.code == "no-iterations"

    def test_non_canonical_refused_without_plan(self):
        from repro.rewrite.clauses import ClausePlan

        loop = parse_loop("while (x) x = x - 1;")
        p = ClausePlan(var="x", reductions=(), private=(),
                       firstprivate=(), lastprivate=(),
                       local_decls=(), inner_vars=())
        v = verify_loop(loop, p)
        assert not v.ok and v.code == "non-canonical"


class TestDeterminism:
    def test_same_verdict_across_calls(self):
        src = "for (i = 0; i < n; i++) s += a[i] * b[i];"
        assert verdict(src).to_dict() == verdict(src).to_dict()

    def test_fresh_parse_same_verdict(self):
        src = "for (i = 1; i < n; i++) a[i] = a[i] + a[i - 1];"
        assert verdict(src).to_dict() == verdict(src).to_dict()


class TestIterationOrders:
    @pytest.mark.parametrize("schedule", ["permuted", "blocked"])
    @pytest.mark.parametrize("n", [0, 1, 5, 10])
    @pytest.mark.parametrize("nthreads", [2, 4])
    def test_order_is_a_permutation(self, schedule, n, nthreads):
        order, thread_of = _iteration_order(n, schedule, nthreads, seed=0)
        assert sorted(order) == list(range(n))
        assert len(thread_of) == n
        assert all(0 <= t < nthreads for t in thread_of)

    def test_blocked_assigns_contiguous_chunks(self):
        _, thread_of = _iteration_order(8, "blocked", 2, seed=0)
        assert thread_of == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_permuted_actually_permutes(self):
        order, _ = _iteration_order(10, "permuted", 2, seed=0)
        assert order != list(range(10))

    def test_permutation_is_seed_deterministic(self):
        a, _ = _iteration_order(10, "permuted", 2, seed=3)
        b, _ = _iteration_order(10, "permuted", 2, seed=3)
        assert a == b

    def test_unknown_schedule_raises(self):
        with pytest.raises(ValueError):
            _iteration_order(4, "dynamic", 2, seed=0)
