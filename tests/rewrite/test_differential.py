"""Property-based differential testing of the rewrite verifier.

Loops come from the synthetic-dataset grammar
(:class:`~repro.dataset.recipes.RecipeGenerator`) — the same generative
process the models train on, with ground-truth parallelism labels
correct by construction.  Against each generated loop we check the
verifier's verdict against an *independent* brute-force oracle: execute
the loop sequentially, then re-execute the raw body (no privatization,
no clause handling) in reversed iteration order, and compare array
state.

The invariants:

- an accepted rewrite implies array state is iteration-order
  independent (privatization only legalises *scalar* reuse, so array
  cells must already agree under any reordering);
- equivalently: brute-force array divergence implies the verifier must
  not accept;
- every accepted rewrite re-parses and re-verifies from its unparsed
  text (fixed seeds, CI-safe budgets).
"""

import math

import pytest

from repro.cfront import parse_loop
from repro.rewrite import (
    PlanError,
    VerifyConfig,
    plan_clauses,
    rewrite_loop,
    verify_loop,
)
from repro.rewrite.verify import _enumerate_iterations, _snapshot
from repro.dataset.recipes import RecipeGenerator
from repro.tools.canonical import recognize_canonical
from repro.tools.interp import (
    ExecutionBudgetExceeded,
    Interpreter,
    UnsupportedConstruct,
    _ContinueSignal,
)

CONFIG = VerifyConfig()

#: (category, seed) grid: every generator category, many fixed seeds —
#: deterministic corpus, no flakes, CI-safe budgets
CATEGORIES = ["reduction", "private", "simd", "parallel", "target", None]
SEEDS = range(8)
CASES = [(category, seed) for category in CATEGORIES for seed in SEEDS]


def _generated_loop(category, seed):
    recipe = RecipeGenerator(seed=seed).generate(category)
    return recipe, parse_loop(recipe.body)


def _array_state(interp, loop):
    """Array cells only — the state privatization cannot legalise."""
    scalars = frozenset(
        name for name, (_, shape) in interp.memory.bases.items()
        if not shape
    )
    return _snapshot(interp.memory, scalars)


def _brute_force_reversed(loop):
    """Array state after sequential vs reversed-order raw execution.

    Returns ``None`` when the loop cannot be brute-forced (not
    canonical, unsupported constructs, zero trips) — those shapes are
    covered by the verifier's own refusal codes.
    """
    canonical = recognize_canonical(loop)
    if canonical is None:
        return None
    states = []
    for reverse in (False, True):
        interp = Interpreter(max_steps=CONFIG.max_steps,
                             array_extent=CONFIG.array_extent,
                             max_trip=CONFIG.max_trip,
                             seed=CONFIG.seeds[0])
        interp.prepare(loop)
        try:
            values, _ = _enumerate_iterations(interp, loop, canonical,
                                              CONFIG)
            if not values:
                return None
            order = list(reversed(values)) if reverse else values
            var_addr = interp.memory.address_of(canonical.var)
            for v in order:
                interp.memory.write(var_addr, v)
                try:
                    interp.exec_stmt(loop.body)
                except _ContinueSignal:
                    pass
        except (UnsupportedConstruct, ExecutionBudgetExceeded):
            return None
        states.append(_array_state(interp, loop))
    return states


def _arrays_match(a, b):
    for name in set(a) | set(b):
        for x, y in zip(a.get(name, []), b.get(name, [])):
            both_num = (isinstance(x, (int, float))
                        and isinstance(y, (int, float)))
            if both_num:
                if not math.isclose(x, y, rel_tol=CONFIG.rel_tol,
                                    abs_tol=CONFIG.abs_tol):
                    return False
            elif x != y:
                return False
    return True


@pytest.mark.parametrize("category,seed", CASES)
def test_accepted_implies_order_independent_arrays(category, seed):
    """Verifier accepts ⇒ brute-force reversed execution agrees on
    every array cell (contrapositive: raw order dependence on arrays
    must refuse)."""
    recipe, loop = _generated_loop(category, seed)
    try:
        plan = plan_clauses(loop)
    except PlanError:
        return
    verdict = verify_loop(loop, plan, CONFIG)
    states = _brute_force_reversed(loop)
    if verdict.ok and states is not None:
        assert _arrays_match(*states), (
            f"verifier accepted an order-dependent loop "
            f"(category={category}, seed={seed}):\n{recipe.body}")


@pytest.mark.parametrize("category,seed", CASES)
def test_sequential_recipes_never_verify(category, seed):
    """Ground-truth non-parallel loops must not be accepted."""
    recipe, loop = _generated_loop(category, seed)
    if recipe.parallel:
        return
    try:
        plan = plan_clauses(loop)
    except PlanError:
        return                          # refused at planning: fine
    verdict = verify_loop(loop, plan, CONFIG)
    states = _brute_force_reversed(loop)
    if states is not None and not _arrays_match(*states):
        assert not verdict.ok, (
            f"verifier accepted a loop whose arrays are order-"
            f"dependent (category={category}, seed={seed}):\n"
            f"{recipe.body}")


@pytest.mark.parametrize("category,seed", CASES)
def test_accepted_rewrites_reparse_and_reverify(category, seed):
    """Every accepted rewrite is round-trippable C that verifies again."""
    recipe, _ = _generated_loop(category, seed)
    first = rewrite_loop(recipe.body, config=CONFIG)
    if not first.accepted:
        return
    again = rewrite_loop(first.rewritten, config=CONFIG)
    assert again.accepted, (
        f"accepted rewrite failed to re-verify (category={category}, "
        f"seed={seed}): {again.code}: {again.detail}")
    assert again.pragma == first.pragma
    assert again.rewritten == first.rewritten


def test_grid_exercises_accepts_and_refusals():
    """The fixed grid must cover both outcomes, or the suite is vacuous."""
    outcomes = set()
    for category, seed in CASES:
        recipe, _ = _generated_loop(category, seed)
        outcomes.add(rewrite_loop(recipe.body, config=CONFIG).accepted)
    assert outcomes == {True, False}
