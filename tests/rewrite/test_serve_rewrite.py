"""The rewrite pass through the serving stack: service methods,
wire protocol, daemon round trips.

The acceptance bar is *byte identity*: a rewrite computed on the
daemon's compute thread and revived client-side from wire payloads
must equal the in-process `SuggestionService.rewrite_sources` result
exactly — same pragmas, same refusal codes, same rewritten text.
"""

import json

import numpy as np
import pytest

from repro.client import ClientError, connect
from repro.rewrite import FileRewrite
from repro.serve import SuggestionService, SuggestServer, protocol

SUM_SOURCE = """
double a[64], b[64]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 64; i++) a[i] = b[i] * 2.0;
    for (i = 0; i < 64; i++) s += a[i];
}
"""

PREFIX_SOURCE = """
double p[32];
void scan(void) {
    int j;
    for (j = 1; j < 32; j++) p[j] = p[j] + p[j - 1];
}
"""

BAD_SOURCE = "void broken(void) { for (i = 0; i < ; }"

NAMED = [("sum.c", SUM_SOURCE), ("scan.c", PREFIX_SOURCE)]


class _StubModel:
    """Picklable fingerprinted stub following the suggester contract."""

    def __init__(self, value: int, name: str = "stub") -> None:
        self.value = value
        self.name = name

    def predict_samples(self, samples):
        return np.full(len(samples), self.value, dtype=int)

    def fingerprint(self) -> str:
        return f"stub:{self.name}:{self.value}"


def _service() -> SuggestionService:
    return SuggestionService(_StubModel(1), {"reduction": _StubModel(1)})


@pytest.fixture(scope="module")
def service():
    return _service()


@pytest.fixture(scope="module")
def server(service):
    srv = SuggestServer({"default": service}).start()
    yield srv
    srv.shutdown()


class TestServiceRewrites:
    """In-process `SuggestionService.rewrite_*` semantics."""

    def test_verified_codes_per_file(self, service):
        results = service.rewrite_sources(NAMED)
        assert [fr.name for fr in results] == ["sum.c", "scan.c"]
        sum_codes = [r.code for r in results[0].rewrites]
        assert sum_codes == ["verified", "verified"]
        assert [r.code for r in results[1].rewrites] == ["divergence"]

    def test_reduction_clause_synthesized(self, service):
        fr = service.rewrite_sources([("sum.c", SUM_SOURCE)])[0]
        assert fr.rewrites[1].pragma == \
            "#pragma omp parallel for reduction(+:s)"
        assert "reduction(+:s)" in fr.rewritten_source

    def test_refused_file_has_no_pragma(self, service):
        fr = service.rewrite_sources([("scan.c", PREFIX_SOURCE)])[0]
        assert fr.n_accepted == 0 and fr.n_refused == 1
        assert "#pragma" not in fr.rewritten_source

    def test_stream_matches_batch(self, service):
        streamed = list(service.stream_rewrite_sources(NAMED))
        assert streamed == service.rewrite_sources(NAMED)

    def test_verify_false_skips_the_gate(self, service):
        results = service.rewrite_sources(NAMED, verify=False)
        codes = [r.code for fr in results for r in fr.rewrites]
        assert codes == ["unverified"] * 3
        # the divergent scan now carries a (wrong) pragma: the verifier
        # really is the gate
        assert "#pragma" in results[1].rewritten_source

    def test_frontend_error_passthrough(self, service):
        fr = service.rewrite_sources([("bad.c", BAD_SOURCE)])[0]
        assert fr.error is not None and fr.rewrites == []

    def test_deterministic_across_calls(self, service):
        a = service.rewrite_sources(NAMED)
        b = service.rewrite_sources(NAMED)
        assert a == b

    def test_sharded_matches_in_process(self, service):
        sharded = list(service.stream_rewrite_sources(NAMED, shards=2))
        assert sharded == service.rewrite_sources(NAMED)

    def test_verifier_counters_surface(self):
        service = _service()
        results = service.rewrite_sources(NAMED)
        verify = service.cache_stats()["verify"]
        assert verify["simulations"] > 0
        assert verify["compiled_runs"] > 0
        assert verify["elapsed_s"] > 0
        # per-file counters ride on the result without touching the
        # wire payload (byte-identity with the daemon path)
        assert results[0].verifier["simulations"] > 0
        assert "verifier" not in results[0].to_payload()

    def test_sharded_run_distributes_verification(self):
        service = _service()
        sharded = list(service.stream_rewrite_sources(NAMED, shards=2))
        assert sharded == _service().rewrite_sources(NAMED)
        # the workers' verifier counters fold back into the parent
        verify = service.cache_stats()["verify"]
        assert verify["simulations"] > 0

    def test_warm_store_executes_zero_simulations(self, tmp_path):
        def _stored_service():
            from repro.serve import SuggestionStore

            return SuggestionService(
                _StubModel(1), {"reduction": _StubModel(1)},
                store=SuggestionStore(tmp_path / "cache"))

        cold = _stored_service()
        cold_results = cold.rewrite_sources(NAMED)
        assert cold.cache_stats()["verify"]["simulations"] > 0
        warm = _stored_service()
        warm_results = warm.rewrite_sources(NAMED)
        assert warm_results == cold_results
        verify = warm.cache_stats()["verify"]
        assert verify["simulations"] == 0
        assert verify["cached_verdicts"] > 0


class TestRewriteWire:
    """`RewriteRequest` wire shape: additive, defaults, refusals."""

    def test_round_trip(self):
        req = protocol.RewriteRequest(sources=(("a.c", "int x;"),),
                                      verify=False, shards=2)
        revived = protocol.decode_message(req.to_wire())
        assert revived == req
        assert isinstance(revived, protocol.RewriteRequest)

    def test_kind_is_rewrite(self):
        assert protocol.RewriteRequest.KIND == "rewrite"
        assert protocol.RewriteRequest().to_wire()["kind"] == "rewrite"

    def test_verify_defaults_true_when_absent(self):
        wire = protocol.RewriteRequest(sources=(("a.c", "x"),)).to_wire()
        del wire["verify"]
        assert protocol.decode_message(wire).verify is True

    def test_bad_verify_type_refused(self):
        wire = protocol.RewriteRequest().to_wire()
        wire["verify"] = "yes"
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(wire)

    def test_validation_errors_name_the_rewrite_kind(self):
        wire = protocol.RewriteRequest().to_wire()
        wire["sources"] = [["only-a-name"]]
        with pytest.raises(protocol.ProtocolError, match="rewrite"):
            protocol.decode_message(wire)

    def test_is_a_suggest_request(self):
        # subclassing is what lets the server session admit it
        assert issubclass(protocol.RewriteRequest,
                          protocol.SuggestRequest)

    def test_wire_is_json_safe(self):
        req = protocol.RewriteRequest(sources=(("a.c", "int x;"),))
        assert protocol.decode_message(
            json.loads(json.dumps(req.to_wire()))) == req


class TestDaemonRewrites:
    """End-to-end over a live server socket."""

    def test_capability_advertised(self, server):
        with connect(server.address) as client:
            assert client.capabilities.get("rewrite") is True

    def test_round_trip_matches_in_process(self, service, server):
        golden = service.rewrite_sources(NAMED)
        with connect(server.address) as client:
            served = client.rewrite_sources(NAMED)
        assert served == golden
        assert json.dumps([fr.to_payload() for fr in served]) == \
            json.dumps([fr.to_payload() for fr in golden])

    def test_streaming_matches_batch(self, server):
        with connect(server.address) as client:
            streamed = list(client.stream_rewrite_sources(NAMED))
            batched = client.rewrite_sources(NAMED)
        assert streamed == batched

    def test_verify_flag_travels(self, service, server):
        with connect(server.address) as client:
            served = client.rewrite_sources(NAMED, verify=False)
        assert served == service.rewrite_sources(NAMED, verify=False)
        codes = [r.code for fr in served for r in fr.rewrites]
        assert codes == ["unverified"] * 3

    def test_error_files_survive_the_wire(self, service, server):
        mixed = NAMED + [("bad.c", BAD_SOURCE)]
        with connect(server.address) as client:
            served = client.rewrite_sources(mixed)
        assert served == service.rewrite_sources(mixed)
        assert served[2].error is not None

    def test_suggest_still_works_on_same_connection(self, server):
        # the additive request must not disturb the existing kind
        with connect(server.address) as client:
            rewrites = client.rewrite_sources(NAMED)
            suggestions = client.suggest_sources(NAMED)
        assert isinstance(rewrites[0], FileRewrite)
        assert len(suggestions[0].suggestions) == 2

    def test_old_capability_refused_client_side(self, server):
        with connect(server.address) as client:
            caps = dict(client.capabilities)
            caps.pop("rewrite")
            client.capabilities = caps
            with pytest.raises(ClientError) as err:
                client.rewrite_sources(NAMED)
        assert err.value.code == "rewrite-unsupported"

    def test_done_frame_counts_rewrite_files(self, server):
        with connect(server.address) as client:
            list(client.stream_rewrite_sources(NAMED))
            assert client.last_done.files == len(NAMED)
