"""Wire-level tests for the fabric protocol extensions.

The three additive message families behind the ``fabric`` capability:
content-addressed bundle distribution (``bundle_have`` /
``bundle_push``) and the network store operations (``store``).  All
are schema-checked on decode — a sha that is not a sha, a store key
that could traverse out of the cache root, or an unknown op must be
refused at the frame boundary, before any handler sees it.
"""

import io

import pytest

from repro.serve.protocol import (
    STORE_LAYERS,
    STORE_OPS,
    BundleHave,
    BundleHaveOk,
    BundlePush,
    BundlePushOk,
    ProtocolError,
    StoreOk,
    StoreOp,
    decode_message,
    read_message,
    write_message,
)

SHA = "ab" * 32


def _round_trip(message):
    buf = io.BytesIO()
    write_message(buf, message)
    buf.seek(0)
    return read_message(buf)


class TestBundleMessages:
    def test_have_round_trip(self):
        assert _round_trip(BundleHave(sha256=SHA)) == BundleHave(sha256=SHA)

    def test_have_ok_round_trip(self):
        reply = BundleHaveOk(sha256=SHA, have=True, name="advisor")
        assert _round_trip(reply) == reply
        miss = BundleHaveOk(sha256=SHA, have=False)
        assert _round_trip(miss).name is None

    def test_push_round_trip(self):
        push = BundlePush(sha256=SHA, data="aGk=", name="advisor")
        assert _round_trip(push) == push

    def test_push_ok_round_trip(self):
        reply = BundlePushOk(sha256=SHA, name="advisor", cached=True)
        assert _round_trip(reply) == reply

    @pytest.mark.parametrize("bad", [
        "short",                 # wrong length
        "AB" * 32,               # uppercase is not canonical
        "zz" * 32,               # not hex
        "ab" * 33,               # too long
    ])
    def test_malformed_sha_refused(self, bad):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "bundle_have", "sha256": bad})
        assert exc.value.code == "bad-request"

    @pytest.mark.parametrize("bad", [
        "../evil",               # path traversal
        ".hidden",               # leading dot
        "a/b",                   # separator
        "",                      # empty
        "x" * 129,               # over-long
    ])
    def test_malformed_push_name_refused(self, bad):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "bundle_push", "sha256": SHA,
                            "data": "aGk=", "name": bad})
        assert exc.value.code == "bad-request"

    def test_push_name_is_optional(self):
        push = decode_message({"kind": "bundle_push", "sha256": SHA,
                               "data": "aGk="})
        assert push.name is None


class TestStoreMessages:
    def test_get_round_trip(self):
        op = StoreOp(op="get", layer="suggest", key="k" * 64,
                     model_key="m-1")
        assert _round_trip(op) == op

    def test_put_round_trip(self):
        op = StoreOp(op="put", layer="parse", key="k" * 64,
                     entry={"requests": []})
        assert _round_trip(op) == op

    def test_maintenance_round_trip(self):
        op = StoreOp(op="gc", args={"max_bytes": 0})
        assert _round_trip(op) == op
        assert _round_trip(StoreOp(op="describe")).args == {}

    def test_store_ok_round_trip(self):
        assert _round_trip(StoreOk(op="get", entry=None)).entry is None
        ok = StoreOk(op="gc", report={"removed_files": 3})
        assert _round_trip(ok) == ok

    def test_unknown_op_refused(self):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "store", "op": "drop-tables"})
        assert exc.value.code == "bad-request"
        assert "drop-tables" in str(exc.value)

    @pytest.mark.parametrize("layer", [None, "bundles", "PARSE"])
    def test_get_needs_a_known_layer(self, layer):
        payload = {"kind": "store", "op": "get", "key": "k"}
        if layer is not None:
            payload["layer"] = layer
        with pytest.raises(ProtocolError) as exc:
            decode_message(payload)
        assert exc.value.code == "bad-request"

    def test_put_needs_an_entry(self):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "store", "op": "put",
                            "layer": "parse", "key": "k"})
        assert "entry" in str(exc.value)

    def test_suggest_layer_needs_model_key(self):
        with pytest.raises(ProtocolError):
            decode_message({"kind": "store", "op": "get",
                            "layer": "suggest", "key": "k"})

    @pytest.mark.parametrize("bad", ["../up", ".dot", "a b", ""])
    def test_traversal_keys_refused(self, bad):
        with pytest.raises(ProtocolError) as exc:
            decode_message({"kind": "store", "op": "get",
                            "layer": "parse", "key": bad})
        assert exc.value.code == "bad-request"

    def test_op_tables_are_closed(self):
        # handlers dispatch on these; the wire schema must agree
        assert STORE_OPS == ("get", "put", "gc", "fsck", "describe")
        assert STORE_LAYERS == ("parse", "suggest", "verdict")
