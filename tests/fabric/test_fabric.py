"""End-to-end tests of the distributed serving fabric.

The invariant everything here defends: results streamed through
remote peers are byte-identical to the in-process pipeline — at one
peer, at two peers, and with one peer dead mid-fleet (the supervisor
requeues its shard onto a survivor instead of aborting).
"""

import socket

import numpy as np
import pytest

from repro.client import ClientError
from repro.fabric import NetworkStore, iter_inline, stream_fabric
from repro.serve import ServeConfig, SuggestionService, SuggestServer
from repro.serve.pipeline import FileSuggestions
from repro.serve.worker import WorkerSpec

SOURCE_A = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""

SOURCE_B = """
double c[50];
void scale(void) {
    int j;
    for (j = 0; j < 50; j++) c[j] = c[j] * 2.0;
}
"""

BAD_SOURCE = "void broken(void) { for (i = 0; i < ; }"

CORPUS = [("a.c", SOURCE_A), ("b.c", SOURCE_B), ("broken.c", BAD_SOURCE)]


class _StubModel:
    """Picklable fingerprinted stub following the suggester contract."""

    def __init__(self, value: int, name: str = "stub") -> None:
        self.value = value
        self.name = name

    def predict_samples(self, samples):
        return np.full(len(samples), self.value, dtype=int)

    def fingerprint(self) -> str:
        return f"stub:{self.name}:{self.value}"


def _service() -> SuggestionService:
    return SuggestionService(_StubModel(1),
                             {"reduction": _StubModel(0, "red")})


def _golden():
    """The in-process results every fabric topology must reproduce."""
    return _snap(_service().suggest_sources(CORPUS))


def _snap(results):
    return [(r.name, r.to_payload()) for r in results]


def _dead_address() -> str:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return "127.0.0.1:%d" % probe.getsockname()[1]


@pytest.fixture
def fleet():
    """Two identical peer daemons, as a list of addresses."""
    servers = [SuggestServer({"default": _service()}).start()
               for _ in range(2)]
    yield [srv.address for srv in servers]
    for srv in servers:
        srv.shutdown()


class TestStreamFabric:
    def test_one_peer_byte_identical(self, fleet):
        results = list(stream_fabric(fleet[:1], CORPUS, ordered=True))
        assert _snap(results) == _golden()

    def test_two_peers_byte_identical(self, fleet):
        results = list(stream_fabric(fleet, CORPUS, ordered=True))
        assert _snap(results) == _golden()

    def test_unordered_is_the_same_set(self, fleet):
        results = list(stream_fabric(fleet, CORPUS, ordered=False))
        assert sorted(_snap(results)) == sorted(_golden())

    def test_dead_peer_requeues_onto_survivor(self, fleet):
        """Losing a peer re-routes its shard, it never aborts the run.

        The relay for the dead peer exits like a SIGKILLed worker, the
        supervisor requeues, and sid rotation lands the respawn on the
        survivor — so the result is still byte-identical.
        """
        peers = [_dead_address(), fleet[0]]
        results = list(stream_fabric(peers, CORPUS, ordered=True,
                                     config=ServeConfig(max_retries=3)))
        assert _snap(results) == _golden()

    def test_all_peers_dead_is_an_error(self):
        with pytest.raises(Exception):
            list(stream_fabric([_dead_address()], CORPUS, ordered=True,
                               config=ServeConfig(max_retries=1)))

    def test_rewrite_mode_byte_identical(self, fleet):
        golden = [(r.name, r.to_payload())
                  for r in _service().rewrite_sources(CORPUS)]
        results = list(stream_fabric(fleet, CORPUS, mode="rewrite",
                                     ordered=True))
        assert [(r.name, r.to_payload()) for r in results] == golden

    def test_no_peers_refused(self):
        with pytest.raises(ValueError, match="at least one peer"):
            stream_fabric([], CORPUS)

    def test_misaligned_peer_bundles_refused(self, fleet):
        with pytest.raises(ValueError, match="align"):
            stream_fabric(fleet, CORPUS, peer_bundles=("only-one",))


class TestIterInline:
    def test_matches_golden_without_processes(self, fleet):
        spec = WorkerSpec(config=ServeConfig(), peers=(fleet[0],),
                          peer_timeout_s=60.0)
        got = sorted(iter_inline(spec, CORPUS,
                                 FileSuggestions.from_payload),
                     key=lambda pair: pair[0])
        assert [(i, r.name, r.to_payload()) for i, r in got] == [
            (i, name, payload)
            for i, (name, payload) in enumerate(_golden())
        ]


class TestNetworkStoreEdges:
    def test_dead_daemon_degrades_to_misses(self):
        store = NetworkStore(_dead_address(), timeout=2.0)
        assert store.get_parse("k" * 64) is None
        store.put_parse("k" * 64, {"requests": []})
        stats = store.stats()
        assert stats["parse_misses"] == 1
        assert stats["write_errors"] == 1

    def test_dead_daemon_maintenance_raises(self):
        store = NetworkStore(_dead_address(), timeout=2.0)
        with pytest.raises((ClientError, OSError)):
            store.gc(max_bytes=0)

    def test_storeless_daemon_is_fatal_not_retried(self, fleet):
        # peers built without a cache share no store
        store = NetworkStore(fleet[0], timeout=5.0)
        with pytest.raises(ClientError) as exc:
            store.describe()
        assert exc.value.code == "no-store"
        # the refusal is terminal: reads degrade without re-dialing
        assert store._dead is True
        assert store.get_parse("k" * 64) is None


class TestPingCLI:
    def test_human_output(self, fleet, capsys):
        from repro.cli import ping_main

        assert ping_main([fleet[0]]) == 0
        out = capsys.readouterr().out
        assert f"pong from {fleet[0]}" in out
        assert "bundles: default" in out
        assert "fabric: peer only" in out

    def test_json_output(self, fleet, capsys):
        import json

        from repro.cli import ping_main

        assert ping_main([fleet[0], "--json"]) == 0
        probe = json.loads(capsys.readouterr().out)
        assert probe["address"] == fleet[0]
        assert probe["rtt_ms"] > 0
        assert probe["capabilities"]["fabric"] is True
        assert probe["capabilities"]["bundles"] == ["default"]

    def test_dead_daemon_exits_nonzero(self, capsys):
        from repro.cli import ping_main

        dead = _dead_address()
        assert ping_main([dead, "--timeout", "2"]) == 1
        assert f"no pong from {dead}" in capsys.readouterr().err
