"""Content-addressed bundle distribution: hash, verify, push once.

The CAS contract end to end: ``archive_sha256`` is the address,
``BundleRegistry`` refuses content it cannot verify and resolves
hash prefixes unambiguously, and ``bundle-have`` / ``bundle-push``
against a live daemon ship an archive's bytes at most once per peer.
"""

import hashlib
import socket

import pytest

from repro.artifacts import (
    BundleError,
    BundleRegistry,
    SuggesterBundle,
    archive_sha256,
    pack_bundle,
)
from repro.cfront import parse_loop
from repro.client import ClientError, connect
from repro.eval.context import TrainedGraphModel
from repro.fabric import PeerBundle, archive_for, provision_peers
from repro.graphs import build_aug_ast, build_graph_vocab
from repro.models import Graph2Par, Graph2ParConfig
from repro.serve import SuggestServer, protocol
from repro.train import GraphTrainer, TrainConfig

LOOPS = [
    "for (i = 0; i < n; i++) s += a[i];",
    "for (i = 0; i < n; i++) a[i] = b[i] * 2.0;",
]

SOURCE = """
double a[100], b[100]; double s;
void kernel(void) {
    int i;
    for (i = 0; i < 100; i++) a[i] = b[i];
    for (i = 0; i < 100; i++) s += a[i];
}
"""


def _bundle(seed: int = 0) -> SuggesterBundle:
    graphs = [build_aug_ast(parse_loop(src)) for src in LOOPS]
    vocab = build_graph_vocab(graphs)

    def trained(task):
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, layers=1,
                                                 seed=seed))
        return TrainedGraphModel(
            trainer=GraphTrainer(model, TrainConfig(epochs=1, seed=seed)),
            vocab=vocab, representation="aug", task=task,
        )

    return SuggesterBundle(parallel=trained("parallel"),
                           clause_models={"reduction": trained("reduction")})


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """One tiny trained-bundle archive, built once per module."""
    root = tmp_path_factory.mktemp("cas-bundle")
    _bundle().save(root / "advisor")
    path = root / "advisor.tar.gz"
    pack_bundle(root / "advisor", path)
    return path


@pytest.fixture
def acceptor(tmp_path):
    """An empty daemon that accepts pushed bundles."""
    srv = SuggestServer({}, cache_dir=str(tmp_path / "cache"),
                        bundle_cache_dir=tmp_path / "bundles").start()
    yield srv
    srv.shutdown()


class TestContentAddress:
    def test_sha_is_the_bytes_hash(self, archive):
        expected = hashlib.sha256(archive.read_bytes()).hexdigest()
        assert archive_sha256(archive) == expected
        assert archive_sha256(archive) == expected    # stable

    def test_archive_for_passes_files_through(self, archive, tmp_path):
        assert archive_for(archive, tmp_path) == archive
        assert not list(tmp_path.iterdir())           # nothing packed

    def test_archive_for_packs_directories(self, tmp_path):
        _bundle().save(tmp_path / "advisor")
        packed = archive_for(tmp_path / "advisor", tmp_path / "scratch")
        assert packed.is_file()
        # the packed archive is a loadable content address
        registry = BundleRegistry()
        registry.add_archive(packed,
                             expect_sha256=archive_sha256(packed))
        assert registry.names() == ["advisor"]


class TestRegistryVerification:
    def test_hash_mismatch_refused_before_load(self, archive):
        registry = BundleRegistry()
        with pytest.raises(BundleError, match="refusing"):
            registry.add_archive(archive, expect_sha256="0" * 64)
        assert len(registry) == 0                     # nothing served

    def test_add_archive_records_the_hash(self, archive):
        registry = BundleRegistry()
        name = registry.add_archive(archive)
        digest = archive_sha256(archive)
        assert name == "advisor"
        assert registry.sha256_of("advisor") == digest
        assert registry.hashes() == {"advisor": digest}

    def test_resolve_name_and_hash_prefix(self, archive):
        registry = BundleRegistry()
        registry.add_archive(archive)
        digest = archive_sha256(archive)
        assert registry.resolve("advisor") == "advisor"
        assert registry.resolve(digest) == "advisor"
        assert registry.resolve(digest[:12]) == "advisor"

    def test_ambiguous_prefix_refused(self, archive):
        registry = BundleRegistry()
        registry.add_archive(archive, name="alpha")
        registry.add_archive(archive, name="beta")    # same content
        digest = archive_sha256(archive)
        with pytest.raises(ValueError, match="ambiguous"):
            registry.resolve(digest[:12])
        # exact names still address each copy
        assert registry.resolve("alpha") == "alpha"

    def test_unknown_ref_lists_served(self, archive):
        registry = BundleRegistry()
        registry.add_archive(archive)
        with pytest.raises(KeyError, match="advisor"):
            registry.resolve("f" * 64)


class TestPushWire:
    def test_push_once_then_cache_hits(self, acceptor, archive):
        data = archive.read_bytes()
        digest = archive_sha256(archive)
        with connect(acceptor.address) as client:
            assert client.bundle_have(digest).have is False
            first = client.bundle_push(data, name="advisor")
            assert (first.name, first.cached) == ("advisor", False)
            have = client.bundle_have(digest)
            assert have.have is True and have.name == "advisor"
            # the bytes never cross the wire twice
            assert client.bundle_push(data, name="advisor").cached is True
        with connect(acceptor.address) as client:
            assert "advisor" in client.bundles()

    def test_pushed_bundle_serves_requests(self, acceptor, archive):
        with connect(acceptor.address) as client:
            client.bundle_push(archive.read_bytes(), name="advisor")
            frames = list(client.stream_request(protocol.SuggestRequest(
                sources=(("a.c", SOURCE),), bundle="advisor",
                ordered=True, stream=True)))
        assert [f.name for f in frames] == ["a.c"]
        assert frames[0].payload["error"] is None

    def test_hash_prefix_addresses_a_request_bundle(self, acceptor,
                                                    archive):
        digest = archive_sha256(archive)
        with connect(acceptor.address) as client:
            client.bundle_push(archive.read_bytes(), name="advisor")
            frames = list(client.stream_request(protocol.SuggestRequest(
                sources=(("a.c", SOURCE),), bundle=digest[:12],
                ordered=True, stream=True)))
        assert frames[0].payload["error"] is None

    def test_hash_mismatch_refused(self, acceptor, archive):
        with connect(acceptor.address) as client:
            with pytest.raises(ClientError) as exc:
                client.bundle_push(archive.read_bytes(),
                                   sha256="0" * 64, name="advisor")
            assert exc.value.code == "hash-mismatch"
            # the refused archive was not cached under either hash
            assert client.bundle_have("0" * 64).have is False
            assert client.bundle_have(
                archive_sha256(archive)).have is False

    def test_garbage_archive_refused(self, acceptor):
        with connect(acceptor.address) as client:
            with pytest.raises(ClientError) as exc:
                client.bundle_push(b"not a tarball", name="junk")
            assert exc.value.code == "bundle-error"

    def test_push_refused_without_acceptor_flag(self, tmp_path,
                                                archive):
        _bundle().save(tmp_path / "served")
        srv = SuggestServer.from_registry(
            BundleRegistry.from_specs([str(tmp_path / "served")])).start()
        try:
            with connect(srv.address) as client:
                assert client.capabilities["bundle_push"] is False
                with pytest.raises(ClientError) as exc:
                    client.bundle_push(archive.read_bytes())
                assert exc.value.code == "bad-request"
                assert "--accept-bundles" in str(exc.value)
        finally:
            srv.shutdown()


class TestProvision:
    def test_every_peer_provisioned_exactly_once(self, tmp_path,
                                                 archive):
        servers = [
            SuggestServer({}, cache_dir=str(tmp_path / f"c{i}"),
                          bundle_cache_dir=tmp_path / f"b{i}").start()
            for i in range(2)
        ]
        peers = [srv.address for srv in servers]
        try:
            digest = archive_sha256(archive)
            first = provision_peers(peers, archive)
            assert first == [
                PeerBundle(peer=peer, name="advisor", sha256=digest,
                           pushed=True)
                for peer in peers
            ]
            # re-provisioning the warm fleet ships zero bytes
            again = provision_peers(peers, archive)
            assert [pb.pushed for pb in again] == [False, False]
            assert [pb.name for pb in again] == ["advisor", "advisor"]
        finally:
            for srv in servers:
                srv.shutdown()

    def test_partial_fleet_failure_propagates(self, acceptor, archive):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead = "127.0.0.1:%d" % probe.getsockname()[1]
        with pytest.raises((ClientError, OSError)):
            provision_peers([acceptor.address, dead], archive)
