"""Property-based tests (hypothesis) on the core invariants.

Covers: frontend round-trips over generated C, affine-analysis
linearity, heterogeneous-graph structural invariants, autodiff algebra,
segment-op equivalences, tool soundness against the labelling oracle,
and metric identities.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import parse_loop, parse_statements, unparse
from repro.cfront.lexer import Lexer
from repro.cfront.parser import Parser
from repro.dataset.oracle import oracle_parallel
from repro.dataset.recipes import RecipeGenerator
from repro.graphs import EdgeType, build_aug_ast, build_vanilla_ast
from repro.nn.tensor import Tensor, segment_mean, segment_sum
from repro.tools import make_tool
from repro.tools.affine import to_affine
from repro.train.metrics import confusion_counts

# ---------------------------------------------------------------------------
# C expression generator
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y", "i", "j", "n", "tmp"])
_ints = st.integers(min_value=0, max_value=999).map(str)
_binops = st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==", "&&",
                           "||", "&", "|", "^", "<<", ">>"])
_unops = st.sampled_from(["-", "!", "~"])


def _exprs():
    atoms = st.one_of(
        _names,
        _ints,
        st.tuples(_names, _names).map(lambda t: f"{t[0]}[{t[1]}]"),
    )
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.tuples(children, _binops, children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            st.tuples(_unops, children).map(lambda t: f"{t[0]}({t[1]})"),
            st.tuples(_names, children).map(lambda t: f"{t[0]}({t[1]})"),
            st.tuples(children, children, children).map(
                lambda t: f"({t[0]} ? {t[1]} : {t[2]})"
            ),
        ),
        max_leaves=12,
    )


def _unparse_stmts(source: str) -> str:
    block = parse_statements(source)
    return "\n".join(unparse(s) for s in block.stmts)


class TestFrontendProperties:
    @given(_exprs())
    @settings(max_examples=120, deadline=None)
    def test_expression_unparse_parse_fixed_point(self, expr):
        """parse∘unparse is idempotent on arbitrary generated expressions."""
        snippet = f"x = {expr};"
        once = _unparse_stmts(snippet)
        twice = _unparse_stmts(once)
        assert once == twice

    @given(_exprs())
    @settings(max_examples=60, deadline=None)
    def test_lexer_token_count_stable(self, expr):
        """Lexing the unparsed form reproduces an identical token stream."""
        once = _unparse_stmts(f"x = {expr};")
        toks1 = [t.text for t in Lexer(once).lex().tokens]
        toks2 = [t.text for t in Lexer(_unparse_stmts(once)).lex().tokens]
        assert toks1 == toks2

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_recipe_loops_roundtrip(self, seed):
        """Every generated recipe parses, unparses, and reparses stably."""
        gen = RecipeGenerator(seed=seed)
        cat = [None, "reduction", "private", "simd", "target", "parallel"][
            seed % 6
        ]
        recipe = gen.generate(cat)
        loop = parse_loop(recipe.body)
        once = unparse(loop)
        assert unparse(parse_loop(once)) == once


class TestAffineProperties:
    @given(
        st.integers(min_value=-9, max_value=9),
        st.integers(min_value=-9, max_value=9),
        st.integers(min_value=-99, max_value=99),
    )
    @settings(max_examples=80, deadline=None)
    def test_affine_recovers_coefficients(self, ci, cj, const):
        """to_affine inverts the textual linear form exactly."""
        def term(c, v):
            if c == 0:
                return None
            return f"{c} * {v}"
        parts = [p for p in (term(ci, "i"), term(cj, "j"), str(const)) if p]
        text = " + ".join(parts) if parts else "0"
        toks = Lexer(text).lex().tokens
        expr = Parser(toks)._parse_expr()
        aff = to_affine(expr, {"i", "j"})
        assert aff is not None
        assert aff.coeff("i") == ci
        assert aff.coeff("j") == cj
        assert aff.const == const


class TestGraphProperties:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=40, deadline=None)
    def test_augast_structural_invariants(self, seed):
        gen = RecipeGenerator(seed=seed)
        cat = [None, "reduction", "private", "simd", "target", "parallel"][
            seed % 6
        ]
        loop = parse_loop(gen.generate(cat).body)
        graph = build_aug_ast(loop)
        graph.validate()
        # Same node set regardless of augmentation; edges monotone.
        vanilla = build_vanilla_ast(loop)
        assert graph.num_nodes == vanilla.num_nodes
        assert graph.num_edges >= vanilla.num_edges
        # Reverse-edge pairing per forward type.
        for fwd, rev in ((EdgeType.AST, EdgeType.AST_REV),
                         (EdgeType.CFG, EdgeType.CFG_REV),
                         (EdgeType.LEX, EdgeType.LEX_REV)):
            fwd_set = {(s, d) for s, d in graph.edges_of_type(fwd)}
            rev_set = {(d, s) for s, d in graph.edges_of_type(rev)}
            assert fwd_set == rev_set


class TestAutodiffProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_gradient_of_linear_form_is_coefficients(self, n, m, seed):
        """d/dx of sum(a ⊙ x) is exactly a."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, m)).astype(np.float32)
        x = Tensor(rng.normal(size=(n, m)), requires_grad=True)
        (x * a).sum().backward()
        np.testing.assert_allclose(x.grad, a, rtol=1e-5)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_sum_equals_matmul(self, rows, segs, seed):
        """segment_sum(x, ids, S) == M @ x for the indicator matrix M."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(rows, 3)).astype(np.float32)
        ids = rng.integers(0, segs, size=rows)
        dense = np.zeros((segs, rows), dtype=np.float32)
        dense[ids, np.arange(rows)] = 1.0
        out = segment_sum(Tensor(x), ids, segs)
        np.testing.assert_allclose(out.data, dense @ x, rtol=1e-5, atol=1e-6)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_backward_linearity(self, seed):
        """grad(αf) == α·grad(f) for scalar α."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(4, 4))
        alpha = float(rng.uniform(0.5, 3.0))

        def grad_of(scale):
            x = Tensor(data, requires_grad=True)
            ((x * x).sum() * scale).backward()
            return x.grad.copy()

        np.testing.assert_allclose(grad_of(alpha), alpha * grad_of(1.0),
                                   rtol=1e-4)


class TestToolSoundnessProperty:
    """The zero-false-positive contract, as a generative property."""

    @given(st.integers(min_value=0, max_value=20_000))
    @settings(max_examples=40, deadline=None)
    def test_tool_parallel_implies_oracle_parallel(self, seed):
        gen = RecipeGenerator(seed=seed)
        cat = [None, "reduction", "private", "simd", "target", "parallel",
               None, None][seed % 8]
        recipe = gen.generate(cat)
        loop = parse_loop(recipe.body)
        for name in ("pluto", "autopar", "discopop"):
            result = make_tool(name).analyze_loop(loop)
            if result.parallel:
                assert oracle_parallel(loop), (
                    f"{name} claims parallel on a loop the oracle rejects:"
                    f"\n{recipe.body}"
                )


class TestMetricsProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                 min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_confusion_partitions_population(self, pairs):
        preds = np.array([p for p, _ in pairs])
        labels = np.array([l for _, l in pairs])
        m = confusion_counts(preds, labels)
        assert m.tp + m.tn + m.fp + m.fn == len(pairs)
        assert 0.0 <= m.accuracy <= 1.0
        if m.precision and m.recall:
            assert min(m.precision, m.recall) - 1e-9 <= m.f1 \
                <= max(m.precision, m.recall) + 1e-9
