"""Tests for OpenMP pragma parsing and the OMP_Serial labelling rule."""

import pytest

from repro.pragma import (
    OmpPragma,
    PragmaError,
    loop_label,
    parse_omp_pragma,
    pragma_category,
)


class TestParsing:
    def test_parallel_for(self):
        p = parse_omp_pragma("pragma omp parallel for")
        assert p.directives == ["parallel", "for"]
        assert p.clauses == []

    def test_leading_hash_accepted(self):
        p = parse_omp_pragma("#pragma omp for")
        assert p.directives == ["for"]

    def test_non_omp_pragma_returns_none(self):
        assert parse_omp_pragma("pragma unroll(4)") is None
        assert parse_omp_pragma("pragma once") is None

    def test_reduction_clause(self):
        p = parse_omp_pragma("pragma omp parallel for reduction(+:sum)")
        assert p.reductions == [("+", "sum")]

    def test_reduction_multiple_vars(self):
        p = parse_omp_pragma("pragma omp parallel for reduction(*:a, b)")
        assert p.reductions == [("*", "a"), ("*", "b")]

    def test_multiple_reduction_clauses(self):
        p = parse_omp_pragma(
            "pragma omp parallel for reduction(+:s) reduction(max:m)"
        )
        assert ("+", "s") in p.reductions
        assert ("max", "m") in p.reductions

    def test_private_clause(self):
        p = parse_omp_pragma("pragma omp parallel for private(i, j, tmp)")
        assert p.private_vars == ["i", "j", "tmp"]

    def test_firstprivate_counts_as_private(self):
        p = parse_omp_pragma("pragma omp parallel for firstprivate(x)")
        assert p.private_vars == ["x"]

    def test_schedule_clause_args(self):
        p = parse_omp_pragma("pragma omp parallel for schedule(static, 4)")
        c = p.clause("schedule")
        assert c.args == ["static", "4"]

    def test_simd_directive(self):
        p = parse_omp_pragma("pragma omp simd")
        assert p.has_directive("simd")
        assert p.is_loop_directive

    def test_target_composite(self):
        p = parse_omp_pragma(
            "pragma omp target teams distribute parallel for map(to: a)"
        )
        assert p.has_directive("target")
        assert p.has_directive("for")

    def test_unknown_reduction_op_raises(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("pragma omp parallel for reduction(@:x)")

    def test_reduction_without_colon_raises(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("pragma omp parallel for reduction(sum)")

    def test_bare_omp_raises(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("pragma omp")

    def test_nowait_bare_clause(self):
        p = parse_omp_pragma("pragma omp for nowait")
        assert p.has_clause("nowait")

    def test_num_threads(self):
        p = parse_omp_pragma("pragma omp parallel for num_threads(8)")
        assert p.clause("num_threads").args == ["8"]

    def test_str_round_trip(self):
        text = "pragma omp parallel for reduction(+:sum) private(i)"
        p = parse_omp_pragma(text)
        again = parse_omp_pragma(str(p))
        assert again.directives == p.directives
        assert again.reductions == p.reductions
        assert again.private_vars == p.private_vars


class TestCategory:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("pragma omp parallel for reduction(+:s)", "reduction"),
            ("pragma omp parallel for private(i)", "private"),
            ("pragma omp simd", "simd"),
            ("pragma omp for simd", "simd"),
            ("pragma omp target teams distribute parallel for", "target"),
            ("pragma omp parallel for", "parallel"),
            ("pragma omp for", "parallel"),
            ("pragma omp parallel for schedule(dynamic)", "parallel"),
        ],
    )
    def test_category(self, text, expected):
        assert pragma_category(parse_omp_pragma(text)) == expected

    def test_target_beats_reduction(self):
        p = parse_omp_pragma("pragma omp target parallel for reduction(+:s)")
        assert pragma_category(p) == "target"

    def test_reduction_beats_private(self):
        p = parse_omp_pragma("pragma omp parallel for reduction(+:s) private(i)")
        assert pragma_category(p) == "reduction"


class TestLoopLabel:
    def test_parallel_with_category(self):
        ok, cat = loop_label(["pragma omp parallel for reduction(+:x)"])
        assert ok and cat == "reduction"

    def test_no_pragma_is_non_parallel(self):
        ok, cat = loop_label([])
        assert not ok and cat is None

    def test_non_omp_pragma_is_non_parallel(self):
        ok, cat = loop_label(["pragma unroll(2)"])
        assert not ok and cat is None

    def test_non_loop_omp_pragma_is_non_parallel(self):
        # ``omp critical`` is OpenMP but not a worksharing-loop directive.
        ok, cat = loop_label(["pragma omp critical"])
        assert not ok and cat is None

    def test_malformed_pragma_skipped(self):
        ok, cat = loop_label(
            ["pragma omp reduction(", "pragma omp parallel for"]
        )
        assert ok and cat == "parallel"

    def test_first_loop_pragma_wins(self):
        ok, cat = loop_label(
            ["pragma omp parallel for private(t)", "pragma omp simd"]
        )
        assert ok and cat == "private"
