"""Tests for CFG analyses and the lastprivate liveness path."""

import numpy as np
import pytest

from repro.cfg import (
    build_cfg,
    dominates,
    immediate_dominators,
    scalars_read_after,
    unreachable_nodes,
)
from repro.cfront import parse_statements
from repro.cfront.nodes import LOOP_KINDS


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = build_cfg(parse_statements("a = 1; if (a) b = 2; c = 3;"))
        for node in cfg.reachable_from_entry():
            assert dominates(cfg, cfg.entry, node)

    def test_branch_does_not_dominate_join(self):
        cfg = build_cfg(parse_statements("if (a) x = 1; else x = 2; y = 3;"))
        # the then-branch statement does not dominate the join statement
        stmts = [n for n in cfg.nodes if n.role == "stmt"]
        then_stmt, else_stmt, join_stmt = stmts[0], stmts[1], stmts[2]
        assert not dominates(cfg, then_stmt.nid, join_stmt.nid)
        assert not dominates(cfg, else_stmt.nid, join_stmt.nid)

    def test_idom_map_covers_reachable(self):
        cfg = build_cfg(parse_statements("while (a) { b = 1; }"))
        idom = immediate_dominators(cfg)
        assert cfg.entry in idom

    def test_unreachable_after_return(self):
        cfg = build_cfg(parse_statements("return 1; x = 2;"))
        assert unreachable_nodes(cfg)

    def test_fully_reachable_graph(self):
        cfg = build_cfg(parse_statements("a = 1; b = 2;"))
        assert unreachable_nodes(cfg) == set()


class TestScalarsReadAfter:
    def _loop_and_body(self, src):
        body = parse_statements(src)
        loop = next(n for n in body.walk() if isinstance(n, LOOP_KINDS))
        return body, loop

    def test_read_after_loop_detected(self):
        body, loop = self._loop_and_body(
            "for (i = 0; i < n; i++) t = a[i];\nresult = t * 2;"
        )
        assert "t" in scalars_read_after(body, loop)

    def test_no_reads_after(self):
        body, loop = self._loop_and_body(
            "x = 0;\nfor (i = 0; i < n; i++) t = a[i];"
        )
        assert scalars_read_after(body, loop) == set()

    def test_write_after_is_not_a_read(self):
        body, loop = self._loop_and_body(
            "for (i = 0; i < n; i++) t = a[i];\nt = 0;"
        )
        assert "t" not in scalars_read_after(body, loop)

    def test_compound_assign_after_is_a_read(self):
        body, loop = self._loop_and_body(
            "for (i = 0; i < n; i++) t = a[i];\nt += 1;"
        )
        assert "t" in scalars_read_after(body, loop)

    def test_subscript_of_written_array_is_a_read(self):
        body, loop = self._loop_and_body(
            "for (i = 0; i < n; i++) t = a[i];\nb[t] = 1;"
        )
        assert "t" in scalars_read_after(body, loop)


class TestLastprivateSuggestion:
    def test_escaping_scalar_gets_lastprivate(self):
        from repro.suggest import PragmaSuggester

        class Yes:
            def predict_samples(self, samples):
                return np.ones(len(samples), dtype=int)

        class No:
            def predict_samples(self, samples):
                return np.zeros(len(samples), dtype=int)

        suggester = PragmaSuggester(Yes(), {
            "reduction": No(), "private": Yes(), "simd": No(), "target": No(),
        })
        source = """
        double a[100], b[100], t;
        void f(void) {
            int i;
            for (i = 0; i < 100; i++) {
                t = a[i] * 2;
                b[i] = t;
            }
            a[0] = t;
        }
        """
        suggestions = suggester.suggest_file(source)
        assert len(suggestions) == 1
        assert "lastprivate(t)" in suggestions[0].pragma

    def test_non_escaping_scalar_stays_private(self):
        from repro.suggest import PragmaSuggester

        class Yes:
            def predict_samples(self, samples):
                return np.ones(len(samples), dtype=int)

        class No:
            def predict_samples(self, samples):
                return np.zeros(len(samples), dtype=int)

        suggester = PragmaSuggester(Yes(), {
            "reduction": No(), "private": Yes(), "simd": No(), "target": No(),
        })
        source = """
        double a[100], b[100], t;
        void f(void) {
            int i;
            for (i = 0; i < 100; i++) {
                t = a[i] * 2;
                b[i] = t;
            }
        }
        """
        suggestions = suggester.suggest_file(source)
        assert "private(t)" in suggestions[0].pragma
        assert "lastprivate" not in suggestions[0].pragma
