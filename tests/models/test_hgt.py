"""Tests for the HGT model (Graph2Par)."""

import numpy as np
import pytest

from repro.cfront import parse_loop
from repro.graphs import build_aug_ast, build_graph_vocab, collate, encode_graph
from repro.models import Graph2Par, Graph2ParConfig, HGTLayer, TypedLinear
from repro.nn import Adam, Tensor, functional as F

LOOPS = [
    ("for (i = 0; i < n; i++) s += a[i];", 1),
    ("for (i = 0; i < n; i++) a[i] = b[i];", 0),
    ("for (j = 0; j < m; j++) t = t + c[j];", 1),
    ("for (k = 0; k < 9; k++) d[k] = k;", 0),
]


@pytest.fixture(scope="module")
def batch_and_vocab():
    graphs = [build_aug_ast(parse_loop(src)) for src, _ in LOOPS]
    vocab = build_graph_vocab(graphs)
    encs = [encode_graph(g, vocab, label=y) for g, (_, y) in zip(graphs, LOOPS)]
    return collate(encs), vocab


class TestTypedLinear:
    def test_types_get_distinct_transforms(self):
        rng = np.random.default_rng(0)
        tl = TypedLinear(3, 4, 4, rng=rng)
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        out_a = tl(x, np.array([0, 0]))
        out_b = tl(x, np.array([1, 1]))
        assert not np.allclose(out_a.data, out_b.data)

    def test_same_type_same_transform(self):
        tl = TypedLinear(3, 4, 4)
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        out = tl(x, np.array([2, 2]))
        assert np.allclose(out.data[0], out.data[1])

    def test_output_shape(self):
        tl = TypedLinear(5, 8, 16)
        out = tl(Tensor(np.zeros((7, 8))), np.zeros(7, dtype=np.int64))
        assert out.shape == (7, 16)

    def test_gradients_flow_to_used_types_only(self):
        tl = TypedLinear(4, 3, 3)
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = tl(x, np.array([1, 1]))
        out.sum().backward()
        # weight grad rows: only type 1 touched
        wgrad = tl.weight.grad
        assert np.abs(wgrad[1]).sum() > 0
        assert np.abs(wgrad[0]).sum() == 0
        assert np.abs(wgrad[2]).sum() == 0


class TestHGTLayer:
    def test_preserves_shape(self, batch_and_vocab):
        batch, vocab = batch_and_vocab
        layer = HGTLayer(vocab.num_types, dim=16, heads=4, dropout=0.0)
        x = Tensor(np.random.default_rng(0).normal(size=(batch.num_nodes, 16)))
        out = layer(x, batch)
        assert out.shape == (batch.num_nodes, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            HGTLayer(num_types=3, dim=10, heads=3)

    def test_info_propagates_over_edges(self, batch_and_vocab):
        """Changing one node's features must affect its neighbours' output."""
        batch, vocab = batch_and_vocab
        layer = HGTLayer(vocab.num_types, dim=16, heads=2, dropout=0.0)
        rng = np.random.default_rng(1)
        x0 = rng.normal(size=(batch.num_nodes, 16)).astype(np.float32)
        x1 = x0.copy()
        x1[0] += 10.0  # perturb the root node
        out0 = layer(Tensor(x0), batch).data
        out1 = layer(Tensor(x1), batch).data
        changed = np.where(np.abs(out0 - out1).sum(axis=1) > 1e-4)[0]
        assert len(changed) > 1  # neighbours moved too, not just node 0


class TestGraph2Par:
    def test_logit_shape(self, batch_and_vocab):
        batch, vocab = batch_and_vocab
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2, layers=1))
        assert model(batch).shape == (batch.num_graphs, 2)

    def test_encode_shape(self, batch_and_vocab):
        batch, vocab = batch_and_vocab
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2, layers=1))
        assert model.encode(batch).shape == (batch.num_graphs, 16)

    def test_multiclass_head(self, batch_and_vocab):
        batch, vocab = batch_and_vocab
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2, layers=1,
                                                 num_classes=5))
        assert model(batch).shape == (batch.num_graphs, 5)

    def test_deterministic_given_seed(self, batch_and_vocab):
        batch, vocab = batch_and_vocab
        cfg = Graph2ParConfig(dim=16, heads=2, layers=1, seed=3)
        a = Graph2Par(vocab, cfg).eval()
        b = Graph2Par(vocab, cfg).eval()
        assert np.allclose(a(batch).data, b(batch).data)

    def test_overfits_tiny_task(self, batch_and_vocab):
        batch, vocab = batch_and_vocab
        model = Graph2Par(vocab, Graph2ParConfig(dim=32, heads=4, layers=2,
                                                 dropout=0.0))
        opt = Adam(model.parameters(), lr=3e-3)
        for _ in range(50):
            opt.zero_grad()
            loss = F.cross_entropy(model(batch), batch.labels)
            loss.backward()
            opt.step()
        assert F.accuracy(model(batch), batch.labels) == 1.0

    def test_gradients_reach_all_parameter_groups(self, batch_and_vocab):
        batch, vocab = batch_and_vocab
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2, layers=1,
                                                 dropout=0.0))
        loss = F.cross_entropy(model(batch), batch.labels)
        loss.backward()
        groups_with_grad = {
            name.split(".")[0]
            for name, p in model.named_parameters()
            if p.grad is not None and np.abs(p.grad).sum() > 0
        }
        assert {"type_emb", "text_emb", "layers", "head"} <= groups_with_grad

    def test_eval_mode_is_deterministic(self, batch_and_vocab):
        batch, vocab = batch_and_vocab
        model = Graph2Par(vocab, Graph2ParConfig(dim=16, heads=2, layers=1,
                                                 dropout=0.5))
        model.eval()
        out1 = model(batch).data
        out2 = model(batch).data
        assert np.allclose(out1, out2)
