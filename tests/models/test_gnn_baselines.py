"""Tests for the GCN and R-GCN ablation models."""

import numpy as np
import pytest

from repro.cfront import parse_loop
from repro.graphs import build_aug_ast, build_graph_vocab, collate, encode_graph
from repro.models import (
    GCNBaseline,
    GCNConfig,
    RGCNBaseline,
    RGCNConfig,
)
from repro.nn import Adam, functional as F

LOOPS = [
    ("for (i = 0; i < n; i++) s += a[i];", 1),
    ("for (i = 0; i < n; i++) a[i] = b[i];", 0),
    ("for (j = 0; j < m; j++) t = t + c[j];", 1),
    ("for (k = 0; k < 9; k++) d[k] = k;", 0),
]


@pytest.fixture(scope="module")
def batch_and_vocab():
    graphs = [build_aug_ast(parse_loop(src)) for src, _ in LOOPS]
    vocab = build_graph_vocab(graphs)
    encs = [encode_graph(g, vocab, label=y) for g, (_, y) in zip(graphs, LOOPS)]
    return collate(encs), vocab


@pytest.mark.parametrize("factory", [
    lambda v: GCNBaseline(v, GCNConfig(dim=16, layers=1)),
    lambda v: RGCNBaseline(v, RGCNConfig(dim=16, layers=1)),
])
class TestBaselineModels:
    def test_logit_shape(self, batch_and_vocab, factory):
        batch, vocab = batch_and_vocab
        model = factory(vocab)
        assert model(batch).shape == (batch.num_graphs, 2)

    def test_overfits_tiny_task(self, batch_and_vocab, factory):
        batch, vocab = batch_and_vocab
        model = factory(vocab)
        opt = Adam(model.parameters(), lr=5e-3)
        for _ in range(80):
            opt.zero_grad()
            loss = F.cross_entropy(model(batch), batch.labels)
            loss.backward()
            opt.step()
        assert F.accuracy(model(batch), batch.labels) == 1.0

    def test_gradients_flow(self, batch_and_vocab, factory):
        batch, vocab = batch_and_vocab
        model = factory(vocab)
        F.cross_entropy(model(batch), batch.labels).backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


class TestRGCNRelationTyping:
    def test_relation_weights_are_distinct_parameters(self):
        loop = parse_loop(LOOPS[0][0])
        graph = build_aug_ast(loop)
        vocab = build_graph_vocab([graph])
        model = RGCNBaseline(vocab, RGCNConfig(dim=16, layers=1))
        names = [n for n, _ in model.named_parameters()]
        assert any("rel_lins.ast" in n for n in names)
        assert any("rel_lins.cfg" in n for n in names)
        assert any("rel_lins.lex" in n for n in names)
