"""Tests for the PragFormer token-transformer baseline."""

import numpy as np
import pytest

from repro.models import PragFormer, PragFormerConfig
from repro.models.pragformer import (
    CLS,
    PAD,
    build_token_vocab,
    encode_tokens,
    tokenize_loop,
)
from repro.nn import Adam, functional as F


class TestTokenizeLoop:
    def test_cls_first(self):
        assert tokenize_loop("for (i = 0; i < n; i++) s += i;")[0] == CLS

    def test_identifiers_alpha_renamed(self):
        toks = tokenize_loop("for (i = 0; i < n; i++) s += a[i];")
        assert "v0" in toks and "v1" in toks
        assert "i" not in toks and "n" not in toks

    def test_function_names_in_f_namespace(self):
        toks = tokenize_loop("for (i = 0; i < n; i++) s += fabs(a[i]);")
        assert "f0" in toks

    def test_same_identifier_same_token(self):
        toks = tokenize_loop("x = x + x;")
        assert toks.count("v0") == 3

    def test_literals_normalised(self):
        toks = tokenize_loop('x = 30000000 + 2.5; s = "hi";')
        assert "<int>" in toks and "<float>" in toks and "<str>" in toks

    def test_small_ints_kept(self):
        toks = tokenize_loop("for (i = 0; i < 4; i += 2) s++;")
        assert "0" in toks and "4" in toks and "2" in toks

    def test_keywords_and_operators_kept(self):
        toks = tokenize_loop("for (i = 0; i < n; i++) s += i;")
        assert "for" in toks and "+=" in toks and "<" in toks

    def test_max_len_respected(self):
        long_src = "x = " + " + ".join(f"a{i}" for i in range(300)) + ";"
        assert len(tokenize_loop(long_src, max_len=64)) <= 64

    def test_pragma_lines_excluded(self):
        toks = tokenize_loop("#pragma omp parallel for\nfor (i = 0; i < n; i++) s += i;")
        assert "pragma" not in " ".join(toks)


class TestEncodeTokens:
    def test_padding_and_mask(self):
        seqs = [["<cls>", "for", "v0"], ["<cls>", "while"]]
        vocab = build_token_vocab(seqs)
        ids, mask = encode_tokens(seqs, vocab)
        assert ids.shape == mask.shape == (2, 3)
        assert not mask[0].any()
        assert mask[1, 2]  # padded position
        assert ids[1, 2] == vocab[PAD]

    def test_truncation(self):
        seqs = [["<cls>"] + ["x"] * 100]
        vocab = build_token_vocab(seqs)
        ids, mask = encode_tokens(seqs, vocab, max_len=16)
        assert ids.shape == (1, 16)

    def test_unknown_token_becomes_unk(self):
        vocab = build_token_vocab([["<cls>", "for"]])
        ids, _ = encode_tokens([["<cls>", "never-seen"]], vocab)
        assert ids[0, 1] == 0


class TestPragFormerModel:
    def _toy(self):
        pos = ["for (i = 0; i < n; i++) s += a[i];",
               "for (j = 0; j < m; j++) t = t + b[j];"]
        neg = ["for (i = 0; i < n; i++) a[i] = b[i];",
               "for (j = 0; j < m; j++) c[j] = 0;"]
        srcs = pos + neg
        labels = np.array([1, 1, 0, 0])
        seqs = [tokenize_loop(s) for s in srcs]
        vocab = build_token_vocab(seqs)
        ids, mask = encode_tokens(seqs, vocab)
        return vocab, ids, mask, labels, srcs

    def test_logit_shape(self):
        vocab, ids, mask, labels, _ = self._toy()
        model = PragFormer(vocab, PragFormerConfig(dim=16, heads=2, layers=1))
        assert model(ids, mask).shape == (4, 2)

    def test_padding_does_not_change_prediction(self):
        vocab, ids, mask, labels, srcs = self._toy()
        model = PragFormer(vocab, PragFormerConfig(dim=16, heads=2, layers=1,
                                                   dropout=0.0))
        model.eval()
        solo = model.forward_sources([srcs[0]]).data
        batched = model.forward_sources([srcs[0], srcs[1]]).data[0]
        assert np.allclose(solo[0], batched, atol=1e-4)

    def test_overfits_tiny_task(self):
        vocab, ids, mask, labels, _ = self._toy()
        model = PragFormer(vocab, PragFormerConfig(dim=32, heads=4, layers=2,
                                                   dropout=0.0))
        opt = Adam(model.parameters(), lr=3e-3)
        for _ in range(60):
            opt.zero_grad()
            loss = F.cross_entropy(model(ids, mask), labels)
            loss.backward()
            opt.step()
        assert F.accuracy(model(ids, mask), labels) == 1.0

    def test_forward_sources_end_to_end(self):
        vocab, ids, mask, labels, srcs = self._toy()
        model = PragFormer(vocab, PragFormerConfig(dim=16, heads=2, layers=1))
        out = model.forward_sources(srcs)
        assert out.shape == (4, 2)

    def test_dim_heads_validation(self):
        vocab, *_ = self._toy()
        with pytest.raises(ValueError):
            PragFormer(vocab, PragFormerConfig(dim=10, heads=3))
