"""Smoke tests: every example script runs to completion.

The heavier examples (suggest_pragmas trains several models) are marked
slow but still complete within the suite's budget at their internal
fast profiles.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, args: list[str] | None = None, timeout: int = 600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *(args or [])],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "parallel" in out
        assert "aug-AST" in out

    def test_tool_comparison(self):
        out = run_example("tool_comparison.py")
        assert "listing1" in out
        assert "PARALLEL" in out
        assert "unprocessable" in out or "not-parallel" in out

    def test_visualize_augast(self):
        out = run_example("visualize_augast.py")
        assert "digraph augast" in out
        assert "color=red" in out       # CFG edges
        assert "color=orange" in out    # lexical edges

    def test_train_graph2par_small(self):
        out = run_example("train_graph2par.py", ["0.008", "1"])
        assert "test metrics" in out
        assert "weights saved" in out
        Path("graph2par.npz").unlink(missing_ok=True)

    @pytest.mark.slow
    def test_suggest_pragmas(self):
        out = run_example("suggest_pragmas.py", timeout=1800)
        assert "suggestion" in out
