"""Bench: per-category accuracy breakdown (diagnostic behind Tables 2-4)."""

from conftest import run_once

from repro.eval import breakdown


def test_per_category_breakdown(benchmark, config):
    result = run_once(benchmark, breakdown.run, config)
    print("\n" + result.render())

    rows = {r["category"]: r for r in result.rows}
    assert "non-parallel" in rows

    # The model must be usable in every populated category.
    for category, row in rows.items():
        if row["loops"] >= 20:
            assert row["accuracy"] > 0.5, category

    # §6.4 shape: the error mass concentrates on the non-parallel class
    # (unannotated-but-parallelisable loops), so the clause categories
    # should not all be worse than the negative class.
    clause_accs = [row["accuracy"] for cat, row in rows.items()
                   if cat != "non-parallel" and row["loops"] >= 20]
    if clause_accs:
        assert max(clause_accs) >= rows["non-parallel"]["accuracy"] - 0.05