"""Bench: the fused training fast path vs the seed (composed) tape.

The training hot path was overhauled end to end: a fused
``typed_linear`` autograd op (one tape node instead of ~3 per node
type), fused relation-attention / message / softmax-aggregate /
LayerNorm / cross-entropy kernels, round-decomposed bit-exact
scatters, buffer-reusing ``zero_grad``/Adam steps, and
epoch-persistent batch collation.  ``use_fast_math(False)`` restores
the seed path, so both generations stay benchmarkable side by side.

Two claims are measured on the fast experiment profile:

- *speed*: the fused path trains at least ``REQUIRED_SPEEDUP``× faster
  than the seed path (best-of-``ROUNDS`` per side — this is a pure
  single-core algorithmic speedup, so no CPU-count gate applies);
- *grounding*: the speedup is free — per-epoch loss history, final
  state dict, and test-set predictions are byte-identical between the
  two paths for the same seed.

Emits the ``BENCH_train.json`` perf-trajectory artifact.
"""

import os
import time

import numpy as np

from conftest import run_once, write_bench_artifact

from repro.models import Graph2Par, Graph2ParConfig
from repro.nn.tensor import use_fast_math
from repro.train import GraphTrainer, TrainConfig, prepare_graph_data

REQUIRED_SPEEDUP = 2.0
ROUNDS = 3


def _train(fast: bool, data, val, vocab, config):
    """One full training run; returns (fit_seconds, history, state, preds)."""
    with use_fast_math(fast):
        model = Graph2Par(vocab, Graph2ParConfig(
            dim=config.dim, heads=config.heads, layers=config.layers,
            dropout=config.dropout, seed=config.seed,
        ))
        trainer = GraphTrainer(model, TrainConfig(
            epochs=config.epochs, batch_size=config.batch_size,
            lr=config.lr, seed=config.seed,
        ))
        start = time.perf_counter()
        history = trainer.fit(data)
        elapsed = time.perf_counter() - start
        preds = trainer.predict(val)
    return elapsed, history, model.state_dict(), preds


def _fast_vs_seed(context) -> dict:
    config = context.config
    train, test = context.split
    data, vocab = prepare_graph_data(
        train, representation="aug", label_fn=lambda s: int(s.parallel))
    val, _ = prepare_graph_data(
        test, representation="aug", vocab=vocab,
        label_fn=lambda s: int(s.parallel))

    _train(True, data, val, vocab, config)       # warm numpy/BLAS once
    seed_s, fast_s = float("inf"), float("inf")
    seed_run = fast_run = None
    for _ in range(ROUNDS):                      # best-of-N per side
        elapsed, *rest = _train(False, data, val, vocab, config)
        if elapsed < seed_s:
            seed_s, seed_run = elapsed, rest
        elapsed, *rest = _train(True, data, val, vocab, config)
        if elapsed < fast_s:
            fast_s, fast_run = elapsed, rest

    seed_hist, seed_state, seed_preds = seed_run
    fast_hist, fast_state, fast_preds = fast_run
    state_identical = set(seed_state) == set(fast_state) and all(
        seed_state[k].tobytes() == fast_state[k].tobytes()
        for k in seed_state
    )
    return {
        "samples": len(data),
        "epochs": config.epochs,
        "batch_size": config.batch_size,
        "dim": config.dim,
        "cpus": os.cpu_count(),
        "seed_s": round(seed_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(seed_s / fast_s, 2) if fast_s else 0.0,
        "identical_state": state_identical,
        "identical_history": seed_hist == fast_hist,
        "identical_preds": bool(np.array_equal(seed_preds, fast_preds)),
    }


def test_train_speed(benchmark, context):
    result = run_once(benchmark, _fast_vs_seed, context)
    path = write_bench_artifact("train", result)
    print(f"\ntrain speed: {result['samples']} graphs x {result['epochs']} "
          f"epochs, seed tape {result['seed_s']}s vs fused "
          f"{result['fast_s']}s ({result['speedup']}x, "
          f"{result['cpus']} cpus) -> {path}")

    # grounding first: the fused path must change nothing but the clock
    assert result["identical_state"]
    assert result["identical_history"]
    assert result["identical_preds"]
    # the point of the PR: training is at least 2x faster
    assert result["speedup"] >= REQUIRED_SPEEDUP
