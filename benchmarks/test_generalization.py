"""Bench: out-of-distribution generalization to fixed benchmark kernels."""

from conftest import run_once

from repro.eval import generalization


def test_generalization_to_benchmark_suite(benchmark, config):
    result = run_once(benchmark, generalization.run, config)
    print("\n" + result.render())

    rows = {r["approach"]: r for r in result.rows}
    aug = rows["Graph2Par (aug-AST)"]

    # Transfer must be real: clearly better than chance on the suite.
    assert aug["accuracy"] > 0.55

    # Models should not collapse to a constant answer.
    assert 0 < aug["predicted_parallel"] < aug["kernels"]
