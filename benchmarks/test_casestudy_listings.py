"""Bench: §6.6 case study — paper listings + tools-miss-all loops."""

from conftest import run_once

from repro.eval import casestudy


def test_casestudy(benchmark, config):
    result = run_once(benchmark, casestudy.run, config)
    print("\n" + result.render())

    listing_rows = {
        r["listing"]: r for r in result.rows if r["listing"].startswith("listing")
    }
    assert len(listing_rows) == 8

    # Listings whose isolated form matches the paper's reported misses.
    # (6 and 7 need the original crawled context to defeat autoPar /
    # DiscoPoP; our simulators legitimately solve the isolated loops —
    # documented deviation.)
    reproducible = ("listing1", "listing2", "listing3", "listing4",
                    "listing5", "listing8")
    for name in reproducible:
        assert listing_rows[name]["matches_paper"] is True, name

    # Listing 1 and 8 are missed by all three tools, exactly as reported.
    assert listing_rows["listing1"]["missed_by"] == "autopar,discopop,pluto"
    assert listing_rows["listing8"]["missed_by"] == "autopar,discopop,pluto"
