"""Microbenchmarks for the substrate hot paths.

These are latency regression guards for the pieces profiling showed to
dominate end-to-end time: the C frontend, aug-AST construction, graph
batching, the HGT layer, and the segment primitives.
"""

import numpy as np
import pytest

from repro.cfront import parse_loop, parse_source
from repro.graphs import build_aug_ast, build_graph_vocab, collate, encode_graph
from repro.models import Graph2Par, Graph2ParConfig
from repro.nn import functional as F
from repro.nn.tensor import Tensor, segment_softmax, segment_sum

LOOP_SRC = (
    "for (i = 0; i < n; i++) {\n"
    "    t = a[i] * 2;\n"
    "    b[i] = t + fabs(c[i] - c[i+1]);\n"
    "    d[i] = b[i] > 0 ? b[i] : -b[i];\n"
    "}"
)

PROGRAM_SRC = "\n".join(
    f"double arr{k}[1024];\n"
    f"void kernel{k}(void) {{\n"
    f"    int i;\n"
    f"    for (i = 0; i < 1024; i++) arr{k}[i] = arr{k}[i] * {k + 1};\n"
    f"}}"
    for k in range(20)
)


def test_parse_loop_latency(benchmark):
    loop = benchmark(parse_loop, LOOP_SRC)
    assert loop.kind == "ForStmt"


def test_parse_file_latency(benchmark):
    tu = benchmark(parse_source, PROGRAM_SRC)
    assert len(tu.functions()) == 20


def test_augast_build_latency(benchmark):
    loop = parse_loop(LOOP_SRC)
    graph = benchmark(build_aug_ast, loop)
    assert graph.num_edges > graph.num_nodes


def test_collate_latency(benchmark):
    loop = parse_loop(LOOP_SRC)
    graph = build_aug_ast(loop)
    vocab = build_graph_vocab([graph])
    encs = [encode_graph(graph, vocab) for _ in range(64)]
    batch = benchmark(collate, encs)
    assert batch.num_graphs == 64


def test_hgt_forward_latency(benchmark):
    loop = parse_loop(LOOP_SRC)
    graph = build_aug_ast(loop)
    vocab = build_graph_vocab([graph])
    encs = [encode_graph(graph, vocab) for _ in range(64)]
    batch = collate(encs)
    model = Graph2Par(vocab, Graph2ParConfig(dim=48, heads=4, layers=2))
    model.eval()

    def forward():
        from repro.nn.tensor import no_grad
        with no_grad():
            return model(batch)

    logits = benchmark(forward)
    assert logits.shape == (64, 2)


def test_hgt_train_step_latency(benchmark):
    loop = parse_loop(LOOP_SRC)
    graph = build_aug_ast(loop)
    vocab = build_graph_vocab([graph])
    encs = [encode_graph(graph, vocab, label=k % 2) for k in range(32)]
    batch = collate(encs)
    model = Graph2Par(vocab, Graph2ParConfig(dim=48, heads=4, layers=2))
    from repro.nn import Adam
    opt = Adam(model.parameters(), lr=1e-3)

    def step():
        opt.zero_grad()
        loss = F.cross_entropy(model(batch), batch.labels)
        loss.backward()
        opt.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss.item())


def test_segment_softmax_latency(benchmark):
    rng = np.random.default_rng(0)
    logits = Tensor(rng.normal(size=(20_000, 4)).astype(np.float32))
    seg = np.sort(rng.integers(0, 4_000, size=20_000))

    p = benchmark(segment_softmax, logits, seg, 4_000)
    assert np.isfinite(p.data).all()


def test_segment_sum_latency(benchmark):
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(20_000, 48)).astype(np.float32))
    seg = rng.integers(0, 4_000, size=20_000)

    out = benchmark(segment_sum, x, seg, 4_000)
    assert out.shape == (4_000, 48)
