"""Bench: §2 coverage — how much of OMP_Serial each tool can process."""

from conftest import run_once

from repro.eval import coverage


def test_coverage_processability(benchmark, config):
    result = run_once(benchmark, coverage.run, config)
    print("\n" + result.render())

    rows = {r["tool"]: r for r in result.rows}
    assert set(rows) == {"pluto", "autopar", "discopop"}

    # The paper's coverage ladder: the dynamic tool is the most starved
    # (3.7 %), the ROSE frontend is the next bottleneck (10.3 %), source
    # -level analysis covers the most.
    dd = rows["discopop"]["file_gated_loop_coverage"]
    ap = rows["autopar"]["file_gated_loop_coverage"]
    pl = rows["pluto"]["file_gated_loop_coverage"]
    assert dd < ap < pl

    # Magnitudes in the paper's ballpark.
    assert dd < 0.12
    assert ap < 0.30
    assert pl < 0.80  # even Pluto rejects most loops (non-SCoP)

    # Loop-level-only coverage always >= the file-gated number.
    for row in rows.values():
        assert row["loop_level_only"] >= row["file_gated_loop_coverage"]
