"""Bench: edge-type ablation (DESIGN.md extension experiment)."""

from conftest import run_once

from repro.eval import ablation


def test_ablation_edge_types(benchmark, config):
    result = run_once(benchmark, ablation.run, config)
    print("\n" + result.render())

    by_variant = {r["variant"]: r for r in result.rows}
    full = by_variant["aug-AST (full)"]
    tree = by_variant["AST only"]

    # The augmentation must not hurt beyond seed noise (at repro scale
    # the variants are statistical ties; see EXPERIMENTS.md).
    assert full["f1"] >= tree["f1"] - 0.05

    # Every variant learns the task.
    for row in result.rows:
        assert row["accuracy"] > 0.6, row["variant"]
