"""Bench: regenerate Table 1 (OMP_Serial statistics)."""

from conftest import run_once

from repro.eval import table1


def test_table1_dataset_statistics(benchmark, config):
    result = run_once(benchmark, table1.run, config)
    print("\n" + result.render())

    rows = {(r["source"], r["pragma_type"]): r for r in result.rows}

    # All four pragma categories plus plain parallel and non-parallel.
    github_cats = {k[1] for k in rows if k[0] == "github"}
    assert {"reduction", "private", "simd", "target", "-"} <= github_cats

    # Category proportions track the paper (private is the largest
    # parallel category; non-parallel outnumbers every single category).
    private = rows[("github", "private")]["loops"]
    reduction = rows[("github", "reduction")]["loops"]
    simd = rows[("github", "simd")]["loops"]
    target = rows[("github", "target")]["loops"]
    non_parallel = rows[("github", "-")]["loops"]
    assert private > reduction > target
    assert private > simd > target
    assert non_parallel > private

    # LOC shape: simd/target are short; private and non-parallel long.
    assert rows[("github", "simd")]["avg_loc"] < rows[("github", "private")]["avg_loc"]
    assert rows[("github", "target")]["avg_loc"] < rows[("github", "-")]["avg_loc"]

    # Synthetic loops are much larger than crawled ones (paper: ~30 vs ~7).
    synth_parallel = [
        r for r in result.rows
        if r["source"] == "synthetic" and r["type"] == "parallel"
    ]
    assert synth_parallel
    assert all(r["avg_loc"] > 8 for r in synth_parallel)
