"""Bench: cost of surviving a SIGKILLed shard worker mid-corpus.

A 2-shard streaming run is measured twice over the same synthetic
corpus: fault-free, and with a deterministic
:class:`~repro.serve.faults.FaultPlan` that SIGKILLs shard 0's worker
after its first file.  The supervisor detects the death, respawns the
shard in careful mode, and re-serves only the unfinished files — so
the faulted run must stay byte-identical and its wall clock must stay
within ``MAX_OVERHEAD``× the clean run (recovery re-forks one worker
and replays the killed shard's remainder; it never redoes completed
work or aborts the run).

Headline metric: ``recovery_efficiency = clean_s / faulted_s`` — the
fraction of fault-free throughput retained under a worker kill
(higher is better, 1.0 would mean a free recovery), emitted to
``BENCH_faults.json`` and gated by ``check_regression.py``.
"""

import os
import time

from conftest import run_once, write_bench_artifact

from repro.dataset.corpus import CorpusGenerator
from repro.serve import Fault, FaultPlan, ServeConfig, build_service, faults

MAX_OVERHEAD = 2.5
MIN_FILES = 8
SHARDS = 2


def _write_corpus(directory) -> int:
    # big enough that recovery cost (one respawn + replaying the killed
    # shard's remainder) is measured against real pipeline work, not
    # against fork overhead alone
    _, files = CorpusGenerator(seed=31).generate(scale=0.008)
    for f in files:
        (directory / f"file_{f.file_id}.c").write_text(f.source)
    return len(files)


def _renders(results):
    return [(fs.name, fs.error, [s.render() for s in fs.suggestions])
            for fs in results]


def _timed_stream(context, corpus) -> tuple[float, list]:
    config = ServeConfig(workers=1, batch_size=512,
                         heartbeat_s=5.0, retry_backoff_s=0.01)
    best_s, best_results = float("inf"), None
    for _ in range(2):
        service = build_service(context, config)
        start = time.perf_counter()
        results = list(service.stream_dir(corpus, ordered=True,
                                          shards=SHARDS))
        elapsed = time.perf_counter() - start
        if elapsed < best_s:
            best_s, best_results = elapsed, results
    return best_s, best_results


def _clean_vs_faulted(context, tmp_path) -> dict:
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    n_files = _write_corpus(corpus)

    clean_s, clean_results = _timed_stream(context, corpus)

    # armed through the environment so forked shard workers inherit it;
    # the respawned careful shard gets a fresh sid, so the kill fires
    # exactly once per run
    plan = FaultPlan((Fault("kill-worker", sid=0, after_files=1),))
    os.environ[faults.ENV_VAR] = plan.to_json()
    faults.reset()
    try:
        faulted_s, faulted_results = _timed_stream(context, corpus)
    finally:
        del os.environ[faults.ENV_VAR]
        faults.reset()

    return {
        "files": n_files,
        "cpus": os.cpu_count(),
        "shards": SHARDS,
        "clean_s": round(clean_s, 4),
        "faulted_s": round(faulted_s, 4),
        "recovery_overhead": round(faulted_s / clean_s, 3)
        if clean_s else 0.0,
        "recovery_efficiency": round(clean_s / faulted_s, 3)
        if faulted_s else 0.0,
        "identical": _renders(faulted_results) == _renders(clean_results),
    }


def test_fault_recovery(benchmark, context, tmp_path):
    build_service(context)      # train once, outside the measured body
    result = run_once(benchmark, _clean_vs_faulted, context, tmp_path)
    path = write_bench_artifact("faults", result)
    print(f"\nfault recovery: {result['files']} files, clean "
          f"{result['clean_s']}s vs killed-worker {result['faulted_s']}s "
          f"({result['recovery_overhead']}x overhead, efficiency "
          f"{result['recovery_efficiency']}, {result['cpus']} cpus) "
          f"-> {path}")

    assert result["files"] >= MIN_FILES
    # grounding: a worker kill must not change a single byte
    assert result["identical"]
    # recovery replays one shard's remainder after one respawn; it must
    # never cost more than MAX_OVERHEAD of the fault-free run
    assert result["recovery_overhead"] <= MAX_OVERHEAD
