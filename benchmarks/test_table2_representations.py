"""Bench: regenerate Table 2 (representation comparison).

The paper's headline result: aug-AST (Graph2Par) beats the token
transformer (PragFormer), which beats the vanilla AST, on pragma
existence prediction.
"""

from conftest import run_once

from repro.eval import table2


def test_table2_representation_ordering(benchmark, config):
    result = run_once(benchmark, table2.run, config)
    print("\n" + result.render())

    by_approach = {r["approach"]: r for r in result.rows}
    assert set(by_approach) == {"AST", "PragFormer", "Graph2Par"}

    aug = by_approach["Graph2Par"]
    tokens = by_approach["PragFormer"]
    vanilla = by_approach["AST"]

    # All models beat chance decisively on a ~60/40 task.
    for row in result.rows:
        assert row["accuracy"] > 0.6, row

    # Headline shape: Graph2Par is competitive with the best
    # representation.  At the paper's data scale the aug-AST wins by
    # clear margins (85/80/74); at this reduced scale single-run seed
    # variance compresses the gaps (documented in EXPERIMENTS.md), so
    # the bench asserts a tolerance band rather than a strict ordering.
    best = max(tokens["accuracy"], vanilla["accuracy"])
    assert aug["accuracy"] >= best - 0.05, (
        f"Graph2Par {aug['accuracy']} fell behind the best baseline {best}"
    )
    assert aug["f1"] >= max(tokens["f1"], vanilla["f1"]) - 0.05

    # Graph2Par must be decisively strong in absolute terms.
    assert aug["accuracy"] > 0.75
    assert aug["f1"] > 0.75
