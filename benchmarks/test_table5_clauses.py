"""Bench: regenerate Table 5 (four-pragma clause prediction)."""

from conftest import run_once

from repro.eval import table5


def test_table5_clause_prediction(benchmark, config):
    result = run_once(benchmark, table5.run, config)
    print("\n" + result.render())

    g2p = {
        r["pragma"]: r for r in result.rows if r["approach"] == "Graph2Par"
    }
    assert set(g2p) == {"private", "reduction", "simd", "target"}

    # Every clause task is learnable well above chance.
    for clause, row in g2p.items():
        assert row["accuracy"] > 0.6, clause

    # The paper's shape: private/reduction are the strong tasks.
    strong = min(g2p["private"]["f1"], g2p["reduction"]["f1"])
    assert strong > 0.6

    # PragFormer rows exist for private/reduction and are N/A for
    # simd/target (paper parity).
    pf = {r["pragma"]: r for r in result.rows if r["approach"] == "PragFormer"}
    assert pf["simd"]["accuracy"] is None
    assert pf["target"]["accuracy"] is None
    assert pf["private"]["accuracy"] is not None

    # Graph2Par at least matches the token baseline where both run
    # (tolerance for reduced-scale variance).
    for clause in ("private", "reduction"):
        assert g2p[clause]["f1"] >= pf[clause]["f1"] - 0.05
