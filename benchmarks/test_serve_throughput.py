"""Bench: batched suggestion serving vs the per-loop baseline.

The per-loop path pays ``L×(C+1)`` single-graph encode+forward passes
for L loops and C clause families; ``repro.serve`` extracts every loop,
deduplicates repeated sources (crawled corpora are redundant — the
paper had to deduplicate its own crawl), encodes each distinct loop
once against the shared vocab, and runs one block-diagonal forward per
model for the whole workload.

The corpus is ≥50 distinct synthetic loops across generated files, with
a realistic duplication tail (the same files appearing under new names,
as forks/copies do).  Both paths consume identical extracted requests
and must produce byte-identical suggestions; the suggestion pipeline
(encode + predict + compose, what `suggest_loop` does per loop) must be
≥5× faster batched.  End-to-end wall time including the file-parse
stage is recorded alongside in ``BENCH_serve.json``.
"""

import time

from conftest import run_once, write_bench_artifact

from repro.dataset.corpus import CorpusGenerator
from repro.eval.generation import build_suggester
from repro.serve import ServeConfig, build_service
from repro.serve.parse import parse_many

MIN_DISTINCT_LOOPS = 50
#: fraction of files repeated under a second name (fork/copy redundancy)
DUPLICATED_FILES = 12
REQUIRED_SPEEDUP = 5.0


def _corpus() -> list[tuple[str, str]]:
    _, files = CorpusGenerator(seed=11).generate(scale=0.002)
    named = [(f"file_{f.file_id}.c", f.source) for f in files]
    named += [(f"copy_{f.file_id}.c", f.source)
              for f in files[:DUPLICATED_FILES]]
    return named


def _compare_paths(context) -> dict:
    named = _corpus()
    config = ServeConfig(workers=1, batch_size=512)
    per_loop = build_suggester(context)

    # identical inputs for both paths: the serve parse stage's requests
    parsed = parse_many(named, workers=1)
    requests = [req for pf in parsed for req in pf.requests]
    distinct = len({(r.source, r.live_out) for r in requests})

    # best-of-2 on each path: one timing sample per side is too noisy
    # for a ratio assertion on shared CI runners
    per_loop_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        baseline = [
            per_loop.suggest_loop(req.source, live_out=req.live_out)
            for req in requests
        ]
        per_loop_s = min(per_loop_s, time.perf_counter() - start)

    batched_s = float("inf")
    for _ in range(2):
        service = build_service(context, config)   # cold caches each round
        start = time.perf_counter()
        batched = service.suggester.suggest_batch(requests)
        batched_s = min(batched_s, time.perf_counter() - start)

    # end-to-end (includes the file-parse stage), for the trajectory
    e2e_service = build_service(context, config)
    start = time.perf_counter()
    served = e2e_service.suggest_sources(named)
    e2e_s = time.perf_counter() - start

    flat_served = [s for fs in served for s in fs.suggestions]
    renders = [s.render() for s in batched]
    identical = (
        renders == [s.render() for s in baseline]
        and renders == [s.render() for s in flat_served]
    )
    return {
        "files": len(named),
        "loops": len(requests),
        "distinct_loops": distinct,
        "per_loop_s": round(per_loop_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(per_loop_s / batched_s, 2) if batched_s else 0.0,
        "end_to_end_s": round(e2e_s, 4),
        "end_to_end_speedup": round(per_loop_s / e2e_s, 2) if e2e_s else 0.0,
        "batched_loops_per_s": round(len(requests) / batched_s, 1)
        if batched_s else 0.0,
        "identical": identical,
        "cache": service.cache_stats(),
    }


def test_serve_throughput(benchmark, context):
    result = run_once(benchmark, _compare_paths, context)
    path = write_bench_artifact("serve", result)
    print(f"\nserve throughput: {result['loops']} loops "
          f"({result['distinct_loops']} distinct) in "
          f"{result['batched_s']}s batched vs {result['per_loop_s']}s "
          f"per-loop ({result['speedup']}x; end-to-end "
          f"{result['end_to_end_speedup']}x) -> {path}")

    assert result["distinct_loops"] >= MIN_DISTINCT_LOOPS
    # grounding: the batched pipeline must not change a single byte
    assert result["identical"]
    assert result["speedup"] >= REQUIRED_SPEEDUP
