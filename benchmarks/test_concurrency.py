"""Bench: cross-client micro-batching vs lock-serialized serving.

PR 5's daemon serialized compute behind a per-bundle lock: N
concurrent interactive requests paid N full pipeline passes, one after
another.  The async core coalesces requests that arrive together into
one round — one block-diagonal forward per model answers all of them —
so the per-pass fixed cost (store transaction, encode-cache setup,
model-call overhead) is paid once per *round* instead of once per
*request*.

This bench drives both shapes through the real daemon over loopback
TCP:

- **serialized baseline**: the same N one-file requests issued
  back-to-back over a single connection — exactly the floor the PR 5
  lock imposed on concurrent clients (one request in compute at a
  time, zero overlap);
- **coalesced**: N clients on N connections firing simultaneously
  into the micro-batch window.

It also pins the two promises that make coalescing safe to ship:
per-request replies are byte-identical to a fresh in-process pipeline
run, and a *single* client skips the batch window entirely
(flush-on-idle), so solo latency does not regress.

Results land in ``BENCH_concurrency.json`` for the CI perf trajectory.
"""

import statistics
import threading
import time

from conftest import run_once, write_bench_artifact

from repro.client import connect
from repro.serve import ServeConfig, SuggestServer, build_service

#: coalesced throughput must beat the lock-serialized floor by this
REQUIRED_SPEEDUP = 1.5
#: single-client p50 latency with the window on vs off (flush-on-idle
#: means the window never applies to a lone client)
MAX_SOLO_OVERHEAD = 1.10

N_CLIENTS = 8
#: measurement repetitions (fresh sources each, medians reported)
TRIALS = 3
#: per-request latency samples for the solo-latency comparison
SOLO_REQUESTS = 30

#: the interactive request shape: one small file per client — the
#: traffic where per-pass fixed cost dominates and a compute lock
#: hurts the most
TINY_SOURCE = """\
double x[64], y[64];
void axpy(double a) {
    int i;
    for (i = 0; i < 64; i++) y[i] += a * x[i];
}
"""


def _workload(client_id: int, salt: str) -> list:
    """One distinct single-file request (salt defeats the store)."""
    return [(f"client{client_id}.c",
             TINY_SOURCE + f"/* {salt} client {client_id} */\n")]


def _serialized_total(context, serve_config, cache_dir, salt) -> tuple:
    """N requests back-to-back over one connection: the PR 5 floor."""
    service = build_service(context, serve_config, cache_dir=cache_dir)
    with SuggestServer({"default": service}).start() as server:
        with connect(server.address) as client:
            client.suggest_sources(_workload(99, salt + "-warm"))
            latencies = []
            start = time.perf_counter()
            for c in range(N_CLIENTS):
                s = time.perf_counter()
                client.suggest_sources(_workload(c, salt))
                latencies.append(time.perf_counter() - s)
            total = time.perf_counter() - start
    return total, latencies


def _coalesced_total(context, serve_config, cache_dir, salt) -> tuple:
    """N clients firing together into the micro-batch window."""
    service = build_service(context, serve_config, cache_dir=cache_dir)
    with SuggestServer({"default": service},
                       batch_window_ms=25.0).start() as server:
        clients = [connect(server.address) for _ in range(N_CLIENTS)]
        try:
            clients[0].suggest_sources(_workload(98, salt + "-warm"))
            latencies = [None] * N_CLIENTS
            results = [None] * N_CLIENTS
            barrier = threading.Barrier(N_CLIENTS + 1)

            def run(c):
                barrier.wait()
                s = time.perf_counter()
                results[c] = [fs.to_payload() for fs in
                              clients[c].suggest_sources(_workload(c, salt))]
                latencies[c] = time.perf_counter() - s

            threads = [threading.Thread(target=run, args=(c,))
                       for c in range(N_CLIENTS)]
            for t in threads:
                t.start()
            barrier.wait()
            start = time.perf_counter()
            for t in threads:
                t.join(timeout=120)
            total = time.perf_counter() - start
            coalesce = service.cache_stats()["coalesce"]
        finally:
            for c in clients:
                c.close()
    return total, latencies, results, coalesce


def _solo_p50_ms(context, serve_config, cache_dir, window_ms,
                 salt) -> float:
    """Warm per-request p50 of a lone client on a given window."""
    service = build_service(context, serve_config, cache_dir=cache_dir)
    with SuggestServer({"default": service},
                       batch_window_ms=window_ms).start() as server:
        with connect(server.address) as client:
            client.suggest_sources(_workload(97, salt + "-warm"))
            samples = []
            for i in range(SOLO_REQUESTS):
                s = time.perf_counter()
                client.suggest_sources(_workload(i, salt))
                samples.append(time.perf_counter() - s)
    return statistics.median(samples) * 1e3


def _concurrency(context, tmp_path) -> dict:
    serve_config = ServeConfig(workers=1, batch_size=512)

    serial_totals, serial_lats = [], []
    conc_totals, conc_lats = [], []
    identical = True
    coalesce = {}
    for trial in range(TRIALS):
        total, lats = _serialized_total(
            context, serve_config, tmp_path / f"ser{trial}",
            f"serial-{trial}")
        serial_totals.append(total)
        serial_lats.extend(lats)

        total, lats, results, coalesce = _coalesced_total(
            context, serve_config, tmp_path / f"conc{trial}",
            f"conc-{trial}")
        conc_totals.append(total)
        conc_lats.extend(lats)

        # byte-identity: every client's reply matches a fresh,
        # cold in-process pipeline run of its own workload
        for c in range(N_CLIENTS):
            golden = build_service(context, serve_config)
            expected = [fs.to_payload() for _, fs in golden.iter_sources(
                _workload(c, f"conc-{trial}"))]
            identical = identical and results[c] == expected

    solo_window_ms = _solo_p50_ms(
        context, serve_config, tmp_path / "solo-win", 25.0, "solo-win")
    solo_nowindow_ms = _solo_p50_ms(
        context, serve_config, tmp_path / "solo-off", 0.0, "solo-off")

    serial_total_s = statistics.median(serial_totals)
    conc_total_s = statistics.median(conc_totals)
    return {
        "clients": N_CLIENTS,
        "files_per_client": 1,
        "trials": TRIALS,
        "transport": "tcp-loopback",
        "serialized_total_ms": round(serial_total_s * 1e3, 2),
        "coalesced_total_ms": round(conc_total_s * 1e3, 2),
        "serialized_request_p50_ms": round(
            statistics.median(serial_lats) * 1e3, 2),
        "coalesced_request_p50_ms": round(
            statistics.median(conc_lats) * 1e3, 2),
        "coalesced_request_p99_ms": round(
            max(conc_lats) * 1e3, 2),
        "throughput_speedup": round(serial_total_s / conc_total_s, 2)
        if conc_total_s else 0.0,
        "solo_p50_window_ms": round(solo_window_ms, 3),
        "solo_p50_nowindow_ms": round(solo_nowindow_ms, 3),
        "solo_overhead_ratio": round(
            solo_window_ms / solo_nowindow_ms, 3)
        if solo_nowindow_ms else 0.0,
        "byte_identical": identical,
        "last_round_coalesce": coalesce,
    }


def test_concurrency(benchmark, context, tmp_path):
    build_service(context)      # train once, outside the measured body
    result = run_once(benchmark, _concurrency, context, tmp_path)
    path = write_bench_artifact("concurrency", result)
    print(f"\nconcurrency: {result['clients']} clients, coalesced "
          f"{result['coalesced_total_ms']}ms vs serialized "
          f"{result['serialized_total_ms']}ms "
          f"({result['throughput_speedup']}x), solo overhead "
          f"{result['solo_overhead_ratio']}x -> {path}")

    assert result["clients"] >= 8
    assert result["byte_identical"]
    # the coalesced round actually coalesced (one round, many requests)
    assert result["last_round_coalesce"]["requests"] > \
        result["last_round_coalesce"]["rounds"]
    assert result["throughput_speedup"] >= REQUIRED_SPEEDUP
    # flush-on-idle: the batch window must not tax a lone client
    assert result["solo_overhead_ratio"] <= MAX_SOLO_OVERHEAD
