"""Bench: regenerate Table 4 (per-tool subset comparison)."""

from conftest import run_once

from repro.eval import table4


def test_table4_tool_subsets(benchmark, config):
    result = run_once(benchmark, table4.run, config)
    print("\n" + result.render())

    subsets = {r["subset"] for r in result.rows}
    assert subsets, "no tool produced a processable subset"

    for subset in subsets:
        tool_row = result.row_for(subset=subset, approach=subset)
        model_row = result.row_for(subset=subset, approach="Graph2Par")
        assert tool_row and model_row

        # The tools' soundness contract: zero false positives,
        # i.e. precision 1.0 whenever they detect anything.
        assert tool_row["FP"] == 0
        if tool_row["TP"]:
            assert tool_row["precision"] == 1.0

        # Comparative claims need a statistically meaningful subset; the
        # DiscoPoP subset in particular shrinks to a handful of loops at
        # fast profile (its real coverage is 3.7 %).
        population = sum(model_row[k] for k in ("TP", "TN", "FP", "FN"))
        if population < 20:
            continue

        # Graph2Par recalls more parallel loops than the tool on the
        # tool's own turf (the paper's 1.2x-5.2x TP factors).
        assert model_row["TP"] >= tool_row["TP"]

        # And wins on F1 (the tools' conservatism costs them recall).
        assert model_row["f1"] >= tool_row["f1"] - 0.05

        # Graph2Par does make some false positives (paper §6.4) unless
        # the subset is tiny.
        total = sum(model_row[k] for k in ("TP", "TN", "FP", "FN"))
        if total > 100:
            assert model_row["accuracy"] > 0.7
