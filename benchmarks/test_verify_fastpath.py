"""Bench: the verifier fast path — compiled execution + verdict cache.

Two independent claims, one artifact:

- **Compiled speedup.**  Every plannable outermost loop of the bench
  corpus is verified twice — through the compiled executor
  (``VerifyConfig(compiled=True)``, the default) and through the
  tree-walking interpreter (``compiled=False``) — with byte-identical
  verdicts asserted.  ``compiled_speedup`` headlines the ratio; the
  compiled path must stay ≥ ``MIN_SPEEDUP``× faster, or lowering loops
  to closures has stopped paying for itself.
- **Warm verdict cache.**  A second ``rewrite-dir``-equivalent run over
  an unchanged corpus against the same persistent store must execute
  *zero* loop simulations: every verdict replays from the store's
  ``verdict/`` layer (the same contract that makes warm suggestions
  ~88× in ``BENCH_warm_cache.json``).

``BENCH_verify.json`` records both for the perf trajectory.
"""

import time

from conftest import run_once, write_bench_artifact

from repro.cfg.analysis import scalars_read_after
from repro.cfront import parse_source
from repro.dataset.corpus import CorpusGenerator
from repro.dataset.extract import _outermost_loops
from repro.rewrite import PlanError, VerifyConfig, plan_clauses, verify_loop
from repro.serve import ServeConfig, build_service

#: compiled execution must beat the tree-walker by at least this factor
MIN_SPEEDUP = 3.0
MIN_CASES = 30


def _corpus() -> list[tuple[str, str]]:
    _, files = CorpusGenerator(seed=13).generate(scale=0.002)
    return [(f"file_{f.file_id}.c", f.source) for f in files]


def _plannable_loops(named) -> list:
    """Every (loop, plan) the clause planner accepts — the loops that
    actually reach the verifier."""
    cases = []
    for _, source in named:
        tu = parse_source(source)
        for fn in tu.functions():
            if fn.body is None:
                continue
            for loop in _outermost_loops(fn.body):
                live_out = frozenset(scalars_read_after(fn.body, loop))
                try:
                    cases.append((loop, plan_clauses(loop, live_out)))
                except PlanError:
                    continue
    return cases


def _measure(context, cache_dir) -> dict:
    named = _corpus()
    cases = _plannable_loops(named)

    # -- compiled vs interpreted, identical verdicts ------------------
    timings = {}
    verdicts = {}
    for label, config in (("compiled", VerifyConfig(compiled=True)),
                          ("interpreted", VerifyConfig(compiled=False))):
        best = float("inf")
        for _ in range(2):       # best-of-2: ratios need stable sides
            start = time.perf_counter()
            verdicts[label] = [verify_loop(loop, plan, config)
                               for loop, plan in cases]
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    verdicts_identical = verdicts["compiled"] == verdicts["interpreted"]
    speedup = (timings["interpreted"] / timings["compiled"]
               if timings["compiled"] else float("inf"))

    # -- cold vs warm verdict cache -----------------------------------
    # fresh services against one persistent store: the second run must
    # replay every verdict instead of simulating
    cold = build_service(context, ServeConfig(workers=1, batch_size=512),
                         cache_dir=cache_dir)
    cold.rewrite_sources(named, verify=True)
    cold_stats = cold.cache_stats()["verify"]
    warm = build_service(context, ServeConfig(workers=1, batch_size=512),
                         cache_dir=cache_dir)
    warm.rewrite_sources(named, verify=True)
    warm_stats = warm.cache_stats()["verify"]

    return {
        "cases": len(cases),
        "verified": sum(v.ok for v in verdicts["compiled"]),
        "compiled_s": round(timings["compiled"], 4),
        "interpreted_s": round(timings["interpreted"], 4),
        "compiled_speedup": round(speedup, 2),
        "verdicts_identical": verdicts_identical,
        "cold_simulations": cold_stats["simulations"],
        "warm_simulations": warm_stats["simulations"],
        "warm_cached_verdicts": warm_stats["cached_verdicts"],
    }


def test_verify_fastpath(benchmark, context, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("verify-store")
    result = run_once(benchmark, _measure, context, cache_dir)
    path = write_bench_artifact("verify", result)
    print(f"\nverify fast path: {result['cases']} loops, compiled "
          f"{result['compiled_s']}s vs interpreted "
          f"{result['interpreted_s']}s "
          f"({result['compiled_speedup']}x); warm run "
          f"{result['warm_simulations']} simulations -> {path}")

    assert result["cases"] >= MIN_CASES
    assert result["verdicts_identical"]
    assert result["compiled_speedup"] >= MIN_SPEEDUP
    assert result["cold_simulations"] > 0
    assert result["warm_simulations"] == 0
    assert result["warm_cached_verdicts"] > 0
