"""Bench: extension — complete pragma generation (paper §8 future work)."""

from conftest import run_once

from repro.eval import generation


def test_pragma_generation(benchmark, config):
    result = run_once(benchmark, generation.run, config)
    print("\n" + result.render())

    row = result.rows[0]
    assert row["loops"] > 0
    # The suggester must recover most annotated-parallel loops...
    assert row["suggested_parallel"] > 0.6 * row["loops"]
    # ...and agree with the developer's directive on a solid majority.
    assert row["directive_agreement"] > 0.5
