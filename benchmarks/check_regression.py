"""CI gate: compare fresh ``BENCH_*.json`` against committed baselines.

Every bench run emits its artifact (``write_bench_artifact``) into a
directory; ``benchmarks/baselines/`` holds the committed baselines —
the perf trajectory the project has already banked (freshly emitted
``BENCH_*.json`` at the repo root are gitignored working copies; use
``--update`` to promote a run into the baselines).  This script
compares the
*headline metric* of each artifact (an internally-normalized ratio
like ``speedup``, so numbers stay comparable across machines of
different absolute speed) and fails when any fresh value falls more
than ``--threshold`` (default 30%) below its baseline.

Usage::

    python benchmarks/check_regression.py FRESH_DIR
        [--baseline-dir DIR] [--threshold 0.30]
        [--summary FILE]        # append the markdown trend table
        [--update]              # rewrite baselines from FRESH_DIR

Exit status: 0 when nothing regressed, 1 on any regression or any
baselined bench that emitted no fresh artifact (a bench silently
dropping out of CI must not pass the gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: artifact name -> headline metrics (higher is better, ratio-scaled)
HEADLINES: dict[str, tuple[str, ...]] = {
    "BENCH_concurrency.json": ("throughput_speedup",),
    "BENCH_fabric.json": ("peer_speedup", "warm_net_speedup"),
    "BENCH_faults.json": ("recovery_efficiency",),
    "BENCH_listen.json": ("speedup",),
    "BENCH_rewrite.json": ("verify_efficiency",),
    "BENCH_serve.json": ("speedup", "end_to_end_speedup"),
    "BENCH_shard_scaling.json": ("speedup",),
    "BENCH_train.json": ("speedup",),
    "BENCH_verify.json": ("compiled_speedup",),
    "BENCH_warm_cache.json": ("speedup",),
}


def _load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def compare(fresh_dir: Path, baseline_dir: Path,
            threshold: float) -> tuple[list[dict], bool]:
    """One row per headline metric; second value is overall pass."""
    rows: list[dict] = []
    ok = True
    names = sorted(
        {p.name for p in baseline_dir.glob("BENCH_*.json")}
        | {p.name for p in fresh_dir.glob("BENCH_*.json")})
    for name in names:
        baseline = _load(baseline_dir / name)
        fresh = _load(fresh_dir / name)
        metrics = HEADLINES.get(name)
        if metrics is None:
            # unmapped artifact: show it, never gate on it
            rows.append({"artifact": name, "metric": "(no headline)",
                         "baseline": None, "fresh": None,
                         "status": "unmapped"})
            continue
        for metric in metrics:
            row = {"artifact": name, "metric": metric,
                   "baseline": (baseline or {}).get(metric),
                   "fresh": (fresh or {}).get(metric)}
            if baseline is None or row["baseline"] is None:
                row["status"] = "new"
            elif fresh is None or row["fresh"] is None:
                row["status"] = "missing"
                ok = False
            elif row["fresh"] < row["baseline"] * (1.0 - threshold):
                row["status"] = "regressed"
                ok = False
            else:
                row["status"] = "ok"
            rows.append(row)
    return rows, ok


_MARKS = {"ok": "✅", "regressed": "❌", "missing": "❌ missing",
          "new": "🆕", "unmapped": "·"}


def trend_table(rows: list[dict], threshold: float) -> str:
    lines = [
        f"### Bench trend (gate: >{threshold:.0%} slowdown fails)",
        "",
        "| artifact | metric | baseline | current | Δ | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for row in rows:
        base, fresh = row["baseline"], row["fresh"]
        if isinstance(base, (int, float)) and isinstance(
                fresh, (int, float)) and base:
            delta = f"{(fresh / base - 1.0):+.1%}"
        else:
            delta = "—"
        fmt = (lambda v: f"{v:g}"
               if isinstance(v, (int, float)) else "—")
        lines.append(
            f"| {row['artifact']} | {row['metric']} | {fmt(base)} "
            f"| {fmt(fresh)} | {delta} "
            f"| {_MARKS.get(row['status'], row['status'])} |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("fresh_dir", type=Path,
                        help="directory holding freshly emitted "
                             "BENCH_*.json artifacts")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path(__file__).resolve().parent
                        / "baselines",
                        help="committed baselines (default: "
                             "benchmarks/baselines/)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max tolerated fractional slowdown of a "
                             "headline metric (default: 0.30)")
    parser.add_argument("--summary", type=Path, default=None,
                        help="append the markdown trend table to this "
                             "file (e.g. $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines from fresh_dir "
                             "instead of gating")
    args = parser.parse_args(argv)

    if args.update:
        for path in sorted(args.fresh_dir.glob("BENCH_*.json")):
            target = args.baseline_dir / path.name
            target.write_text(path.read_text())
            print(f"baseline updated: {target}")
        return 0

    rows, ok = compare(args.fresh_dir, args.baseline_dir,
                       args.threshold)
    table = trend_table(rows, args.threshold)
    print(table)
    if args.summary is not None:
        with args.summary.open("a") as fh:
            fh.write(table + "\n")
    if not ok:
        bad = [r for r in rows if r["status"] in ("regressed",
                                                  "missing")]
        for row in bad:
            print(f"FAIL: {row['artifact']}:{row['metric']} "
                  f"baseline={row['baseline']} "
                  f"current={row['fresh']}", file=sys.stderr)
        return 1
    print("bench gate: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
