"""Bench: distributed fabric scaling + warm network-store serving.

Two claims about the serving fleet are measured against real
``repro serve`` daemon subprocesses on localhost:

- *peer scaling*: fanning a corpus out across 2 peers
  (``stream_fabric``) must finish at least ``REQUIRED_SPEEDUP``×
  faster than relaying the same corpus through 1 peer — the compute
  happens in the daemons, so with ≥2 cores two peers overlap where
  one serializes;
- *warm network store*: a service mounting a daemon's store over the
  wire (``cache_dir="net:ADDR"``) must replay a warm corpus with
  **zero** model forwards, and the warm run's wall clock bounds the
  per-file network-hit latency (``warm_hit_ms``).

Results must be byte-identical to the in-process pipeline at every
peer count, always.  On a single-core runner the scaling assertion is
skipped (two daemons cannot overlap without a second core), but the
``BENCH_fabric.json`` trajectory artifact is emitted either way;
``peer_speedup`` and ``warm_net_speedup`` are the headline metrics
``check_regression.py`` gates on.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

from conftest import run_once, write_bench_artifact

from repro.artifacts import SuggesterBundle
from repro.dataset.corpus import CorpusGenerator
from repro.fabric import stream_fabric
from repro.serve import ServeConfig, SuggestServer, build_service

REQUIRED_SPEEDUP = 1.5
MIN_WARM_SPEEDUP = 1.5
MIN_FILES = 8

REPO_ROOT = Path(__file__).resolve().parent.parent


def _named_corpus() -> list[tuple[str, str]]:
    # big enough that per-peer compute dwarfs the relay's wire and
    # process overhead: the 2-peer ratio must reflect the pipeline
    _, files = CorpusGenerator(seed=37).generate(scale=0.008)
    return [(f"file_{f.file_id}.c", f.source) for f in files]


def _renders(results):
    return [(fs.name, fs.error, [s.render() for s in fs.suggestions])
            for fs in results]


def _spawn_peer(archive: Path, work: Path, tag: str) -> subprocess.Popen:
    """One `repro serve` daemon subprocess on an ephemeral port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    ready = work / f"ready-{tag}.txt"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0", "--bundle", str(archive),
         "--cache-dir", str(work / f"cache-{tag}"),
         "--ready-file", str(ready)],
        env=env, cwd=REPO_ROOT)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            proc.address = ready.read_text().strip()
            return proc
        if proc.poll() is not None:
            raise RuntimeError(f"peer {tag} exited {proc.returncode}")
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError(f"peer {tag} never became ready")


def _timed_fabric(peers, named) -> tuple[float, list]:
    """One *cold* pass: every peer must be freshly spawned.

    A second pass over the same daemons would replay warm from their
    suggestion stores and measure relay overhead instead of compute —
    so each topology gets its own peers and a single measurement.
    """
    start = time.perf_counter()
    results = list(stream_fabric(peers, named, ordered=True))
    return time.perf_counter() - start, results


def _fabric_vs_local(context, tmp_path) -> dict:
    named = _named_corpus()
    bundle = SuggesterBundle.from_context(context)
    archive = tmp_path / "advisor.tar.gz"
    bundle.export_archive(archive)

    golden = _renders(
        build_service(SuggesterBundle.load(archive),
                      ServeConfig()).suggest_sources(named))

    # three daemons so each topology serves the corpus cold: one for
    # the single-peer run, a disjoint pair for the two-peer run
    peers = []
    try:
        peers = [_spawn_peer(archive, tmp_path, tag)
                 for tag in ("solo", "pair-a", "pair-b")]
        addrs = [p.address for p in peers]
        single_s, single_results = _timed_fabric(addrs[:1], named)
        two_s, two_results = _timed_fabric(addrs[1:], named)
    finally:
        for proc in peers:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    # warm network store: one daemon's store mounted over the wire by
    # two fresh services — the second must replay without a forward
    store_peer = SuggestServer(
        {}, cache_dir=str(tmp_path / "net-store"),
        bundle_cache_dir=tmp_path / "net-bundles").start()
    try:
        net = f"net:{store_peer.address}"
        cold_service = build_service(SuggesterBundle.load(archive),
                                     ServeConfig(), cache_dir=net)
        start = time.perf_counter()
        cold_results = cold_service.suggest_sources(named)
        cold_s = time.perf_counter() - start
        warm_service = build_service(SuggesterBundle.load(archive),
                                     ServeConfig(), cache_dir=net)
        start = time.perf_counter()
        warm_results = warm_service.suggest_sources(named)
        warm_s = time.perf_counter() - start
        warm_forwards = sum(
            warm_service.cache_stats()["forwards"].values())
    finally:
        store_peer.shutdown()

    return {
        "files": len(named),
        "cpus": os.cpu_count(),
        "peers": 2,
        "single_peer_s": round(single_s, 4),
        "two_peer_s": round(two_s, 4),
        "peer_speedup": round(single_s / two_s, 3) if two_s else 0.0,
        "cold_net_s": round(cold_s, 4),
        "warm_net_s": round(warm_s, 4),
        "warm_net_speedup": round(cold_s / warm_s, 3)
        if warm_s else 0.0,
        "warm_hit_ms": round(warm_s / len(named) * 1e3, 3),
        "warm_forwards": warm_forwards,
        "identical": (
            _renders(single_results) == golden
            and _renders(two_results) == golden
            and _renders(cold_results) == golden
            and _renders(warm_results) == golden
        ),
    }


def test_fabric_scaling(benchmark, context, tmp_path):
    build_service(context)      # train once, outside the measured body
    result = run_once(benchmark, _fabric_vs_local, context, tmp_path)
    path = write_bench_artifact("fabric", result)
    print(f"\nfabric scaling: {result['files']} files, 1 peer "
          f"{result['single_peer_s']}s vs 2 peers {result['two_peer_s']}s "
          f"({result['peer_speedup']}x), net store cold "
          f"{result['cold_net_s']}s vs warm {result['warm_net_s']}s "
          f"({result['warm_net_speedup']}x, {result['warm_hit_ms']}ms/file, "
          f"{result['cpus']} cpus) -> {path}")

    assert result["files"] >= MIN_FILES
    # grounding: remote serving must not change a single byte
    assert result["identical"]
    # the warm contract: every file replays from the fleet store
    assert result["warm_forwards"] == 0
    assert result["warm_net_speedup"] >= MIN_WARM_SPEEDUP
    if (os.cpu_count() or 1) >= 2:
        # the whole point: two peers beat one peer
        assert result["peer_speedup"] >= REQUIRED_SPEEDUP
