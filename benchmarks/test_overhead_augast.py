"""Bench: §6.5 overhead — aug-AST construction cost per loop."""

from conftest import run_once

from repro.cfront import parse_loop
from repro.eval import overhead
from repro.graphs import build_aug_ast

LISTING1 = (
    "for (i = 0; i < 30000000; i++)\n"
    "    error = error + fabs(a[i] - a[i+1]);"
)


def test_overhead_experiment(benchmark, config):
    result = run_once(benchmark, overhead.run, config)
    print("\n" + result.render())
    total = result.row_for(stage="total per loop")
    # "Order of milliseconds" per the paper; generous CI bound.
    assert total["avg_ms"] < 50.0


def test_single_loop_augast_latency(benchmark):
    """Microbenchmark: one aug-AST build on the paper's Listing 1."""
    loop = parse_loop(LISTING1)
    graph = benchmark(build_aug_ast, loop)
    assert graph.num_nodes > 10
