"""Bench: regenerate Table 3 (# detected parallel loops)."""

from conftest import run_once

from repro.eval import table3


def test_table3_detection_counts(benchmark, config):
    result = run_once(benchmark, table3.run, config)
    print("\n" + result.render())

    counts = {r["approach"]: r["detected_parallel_loops"] for r in result.rows}
    assert set(counts) == {"Graph2Par", "HGT-AST", "DiscoPoP", "PLUTO",
                           "autoPar"}

    # The paper's ordering: the learned models detect an order of
    # magnitude more parallel loops than any algorithm-based tool, and
    # among tools autoPar > PLUTO > DiscoPoP.
    assert counts["Graph2Par"] > counts["autoPar"] * 1.5
    assert counts["HGT-AST"] > counts["autoPar"]
    assert counts["autoPar"] > counts["PLUTO"]
    assert counts["PLUTO"] > counts["DiscoPoP"]

    # Graph2Par finds at least as many as the vanilla-AST model
    # (tolerance: counts within 5 % still satisfy the paper's shape).
    assert counts["Graph2Par"] >= counts["HGT-AST"] * 0.95
