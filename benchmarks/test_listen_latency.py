"""Bench: warm per-file latency through the long-lived daemon.

The whole argument for ``repro serve --listen`` is amortisation: a
per-invocation CLI pays service construction + parse + encode + model
forwards for every file it is asked about, while a warm daemon answers
the same question with one store lookup over a loopback socket.  This
bench measures per-file p50 latency through a warm server against a
cold per-invocation baseline (a fresh uncached service per file — the
in-process lower bound of what a one-shot CLI run must pay, before
interpreter startup and model loading make it worse) and requires the
daemon to win by ``REQUIRED_SPEEDUP``×.

Results land in ``BENCH_listen.json`` for the CI perf trajectory.
"""

import statistics
import time

from conftest import run_once, write_bench_artifact

from repro.client import connect
from repro.dataset.corpus import CorpusGenerator
from repro.serve import ServeConfig, SuggestServer, build_service

REQUIRED_SPEEDUP = 3.0
#: warm measurement rounds over the whole corpus
ROUNDS = 3


def _write_corpus(directory) -> list:
    _, files = CorpusGenerator(seed=23).generate(scale=0.002)
    for f in files:
        (directory / f"file_{f.file_id}.c").write_text(f.source)
    return sorted(directory.glob("*.c"))


def _listen_latency(context, tmp_path) -> dict:
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    paths = _write_corpus(corpus)
    serve_config = ServeConfig(workers=1, batch_size=512)

    # cold baseline: every file pays a fresh, uncached service — the
    # per-invocation story the daemon replaces
    cold_samples_s = []
    for path in paths:
        service = build_service(context, serve_config)
        start = time.perf_counter()
        cold = service.suggest_paths([path])
        cold_samples_s.append(time.perf_counter() - start)
    cold_payloads = [fs.to_payload() for fs in cold]

    service = build_service(context, serve_config,
                            cache_dir=tmp_path / "cache")
    with SuggestServer({"default": service}).start() as server:
        with connect(server.address) as client:
            # first pass warms the store through the daemon
            client.suggest_paths(paths)
            forwards_before = service.cache_stats()["forwards"]["graphs"]

            warm_samples_s = []
            for _ in range(ROUNDS):
                for path in paths:
                    start = time.perf_counter()
                    warm = client.suggest_paths([path])
                    warm_samples_s.append(time.perf_counter() - start)
            forwards_after = service.cache_stats()["forwards"]["graphs"]
    warm_payloads = [fs.to_payload() for fs in warm]

    warm_p50_s = statistics.median(warm_samples_s)
    cold_p50_s = statistics.median(cold_samples_s)
    return {
        "files": len(paths),
        "rounds": ROUNDS,
        "transport": "tcp-loopback",
        "cold_per_file_p50_ms": round(cold_p50_s * 1e3, 3),
        "warm_per_file_p50_ms": round(warm_p50_s * 1e3, 3),
        "warm_per_file_p90_ms": round(
            statistics.quantiles(warm_samples_s, n=10)[-1] * 1e3, 3),
        "speedup": round(cold_p50_s / warm_p50_s, 2) if warm_p50_s
        else 0.0,
        "warm_extra_forwards": forwards_after - forwards_before,
        "identical_last_file": warm_payloads == cold_payloads,
    }


def test_listen_latency(benchmark, context, tmp_path):
    build_service(context)      # train once, outside the measured body
    result = run_once(benchmark, _listen_latency, context, tmp_path)
    path = write_bench_artifact("listen", result)
    print(f"\nlisten latency: {result['files']} files, warm p50 "
          f"{result['warm_per_file_p50_ms']}ms vs cold per-invocation "
          f"{result['cold_per_file_p50_ms']}ms "
          f"({result['speedup']}x) -> {path}")

    assert result["files"] >= 10
    # a warm daemon answers from the store: zero model forwards
    assert result["warm_extra_forwards"] == 0
    assert result["identical_last_file"]
    assert result["speedup"] >= REQUIRED_SPEEDUP
