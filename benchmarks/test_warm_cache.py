"""Bench: cold vs warm ``suggest_dir`` through the persistent store.

A cold run pays the full pipeline per file — pure-python parse, graph
build, encode, batched forwards.  A warm run over an unchanged corpus
replays finished suggestions from the on-disk
:class:`~repro.serve.SuggestionStore` keyed by content hash + model
fingerprint: zero frontend work, zero model forwards.  The warm path
must be at least ``REQUIRED_SPEEDUP``× faster and byte-identical, and
an edited file must be recomputed without dragging the rest of the
corpus with it.

Results land in ``BENCH_warm_cache.json`` for the CI perf trajectory.
"""

import time

from conftest import run_once, write_bench_artifact

from repro.dataset.corpus import CorpusGenerator
from repro.serve import ServeConfig, build_service

REQUIRED_SPEEDUP = 3.0
MIN_FILES = 12


def _write_corpus(directory) -> int:
    _, files = CorpusGenerator(seed=23).generate(scale=0.002)
    for f in files:
        (directory / f"file_{f.file_id}.c").write_text(f.source)
    return len(files)


def _cold_vs_warm(context, tmp_path) -> dict:
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    n_files = _write_corpus(corpus)
    cache_dir = tmp_path / "cache"
    serve_config = ServeConfig(workers=1, batch_size=512)

    # models come pre-trained from the shared context; only the serving
    # pipeline is measured on both sides
    cold_service = build_service(context, serve_config,
                                 cache_dir=cache_dir)
    start = time.perf_counter()
    cold_results = cold_service.suggest_dir(corpus)
    cold_s = time.perf_counter() - start
    cold_stats = cold_service.cache_stats()

    # best-of-2: a single warm sample is too noisy for a CI ratio
    warm_s, warm_results, warm_stats = float("inf"), None, None
    for _ in range(2):
        warm_service = build_service(context, serve_config,
                                     cache_dir=cache_dir)
        start = time.perf_counter()
        results = warm_service.suggest_dir(corpus)
        elapsed = time.perf_counter() - start
        if elapsed < warm_s:
            warm_s, warm_results = elapsed, results
        warm_stats = warm_service.cache_stats()

    identical = [
        [s.render() for s in fs.suggestions] for fs in cold_results
    ] == [
        [s.render() for s in fs.suggestions] for fs in warm_results
    ]

    # selective invalidation: touch one file, only it recomputes
    edited = corpus / "file_0.c"
    edited.write_text(edited.read_text() + "\n/* edited */\n")
    edit_service = build_service(context, serve_config,
                                 cache_dir=cache_dir)
    edit_service.suggest_dir(corpus)
    edit_stats = edit_service.cache_stats()

    n_loops = sum(len(fs.suggestions) for fs in cold_results)
    return {
        "files": n_files,
        "loops": n_loops,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2) if warm_s else 0.0,
        "warm_forwards": warm_stats["forwards"],
        "warm_store": warm_stats["store"],
        "edit_recomputed": edit_stats["store"]["suggest_misses"],
        "edit_replayed": edit_stats["store"]["suggest_hits"],
        "identical": identical,
        "cold_store": cold_stats["store"],
    }


def test_warm_cache(benchmark, context, tmp_path):
    build_service(context)      # train once, outside the measured body
    result = run_once(benchmark, _cold_vs_warm, context, tmp_path)
    path = write_bench_artifact("warm_cache", result)
    print(f"\nwarm cache: {result['files']} files / {result['loops']} "
          f"loops, cold {result['cold_s']}s vs warm {result['warm_s']}s "
          f"({result['speedup']}x) -> {path}")

    assert result["files"] >= MIN_FILES
    assert result["identical"]
    # the whole point: an unchanged corpus costs zero model forwards
    assert result["warm_forwards"] == {"calls": 0, "graphs": 0}
    assert result["warm_store"]["suggest_hits"] == result["files"]
    # editing one file invalidates exactly that file
    assert result["edit_recomputed"] == 1
    assert result["edit_replayed"] == result["files"] - 1
    assert result["speedup"] >= REQUIRED_SPEEDUP
