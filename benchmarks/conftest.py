"""Shared fixtures for the table/figure benchmarks.

Every bench runs against the ``fast`` experiment profile so the whole
suite completes in CI-friendly time on the numpy substrate; the shared
:class:`ExperimentContext` caches the generated dataset, tool verdicts
and trained models across benches within the pytest process.

Run with:  pytest benchmarks/ --benchmark-only
Override profile: pytest benchmarks/ --repro-profile=standard
"""

import pytest

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile", default="fast",
        choices=("fast", "standard", "paper"),
        help="experiment profile for the table/figure benches",
    )


@pytest.fixture(scope="session")
def config(request) -> ExperimentConfig:
    profile = request.config.getoption("--repro-profile")
    return getattr(ExperimentConfig, profile)()


@pytest.fixture(scope="session")
def context(config):
    return get_context(config)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
