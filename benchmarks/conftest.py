"""Shared fixtures for the table/figure benchmarks.

Every bench runs against the ``fast`` experiment profile so the whole
suite completes in CI-friendly time on the numpy substrate; the shared
:class:`ExperimentContext` caches the generated dataset, tool verdicts
and trained models across benches within the pytest process.

Run with:  pytest benchmarks/ --benchmark-only
Override profile: pytest benchmarks/ --repro-profile=standard
"""

import json
import os
from pathlib import Path

import pytest

from repro.eval.config import ExperimentConfig
from repro.eval.context import get_context


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile", default="fast",
        choices=("fast", "standard", "paper"),
        help="experiment profile for the table/figure benches",
    )


@pytest.fixture(scope="session")
def config(request) -> ExperimentConfig:
    profile = request.config.getoption("--repro-profile")
    return getattr(ExperimentConfig, profile)()


@pytest.fixture(scope="session")
def context(config):
    return get_context(config)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def write_bench_artifact(name: str, payload: dict) -> Path:
    """Record a ``BENCH_<name>.json`` perf-trajectory artifact.

    CI uploads every ``BENCH_*.json`` per run so the numbers are
    comparable across PRs.  ``REPRO_BENCH_DIR`` overrides the output
    directory (default: the repo root).
    """
    out_dir = Path(os.environ.get(
        "REPRO_BENCH_DIR", Path(__file__).resolve().parent.parent,
    ))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
