"""Bench: the interpreter-verified rewrite pass over a warm corpus.

The rewrite stage rides on the suggestion pipeline (store hits skip
parse + inference), so this bench isolates what the *rewriter* adds:
clause planning, AST transform + unparse, and — the expensive part —
differential verification across simulated-parallel schedules.

Two passes over the same warm corpus:

- ``verify=False``: plan + transform + unparse only (the floor);
- ``verify=True``: the same plus the sequential-vs-simulated-parallel
  interpreter gate on every candidate loop.

``BENCH_rewrite.json`` records verified rewrites/s for the trajectory
and headlines ``verify_efficiency`` — the fraction of rewrite-pass
throughput retained with the gate on (a machine-normalized ratio, so
the regression gate stays meaningful on shared runners).  A corpus
where verification costs more than ``MAX_OVERHEAD``× the unverified
floor fails outright: the gate must stay cheap enough to be the
default.
"""

import time

from conftest import run_once, write_bench_artifact

from repro.cfront import parse_source, unparse
from repro.dataset.corpus import CorpusGenerator
from repro.serve import ServeConfig, build_service

#: verified pass may cost at most this many × the unverified floor
#: (tight on purpose: the compiled executor + trace elision + shared
#: per-seed snapshots must keep the gate near-free — note this service
#: has no store, so no verdict cache is helping here)
MAX_OVERHEAD = 2.5
MIN_ACCEPTED = 10


def _corpus() -> list[tuple[str, str]]:
    _, files = CorpusGenerator(seed=13).generate(scale=0.002)
    return [(f"file_{f.file_id}.c", f.source) for f in files]


def _measure(context) -> dict:
    named = _corpus()
    service = build_service(context, ServeConfig(workers=1,
                                                 batch_size=512))
    service.suggest_sources(named)          # warm the suggestion store

    # best-of-2 per side: single samples are too noisy for a ratio
    unverified_s = verified_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        service.rewrite_sources(named, verify=False)
        unverified_s = min(unverified_s, time.perf_counter() - start)
    results = None
    for _ in range(2):
        start = time.perf_counter()
        results = service.rewrite_sources(named, verify=True)
        verified_s = min(verified_s, time.perf_counter() - start)

    rewrites = [r for fr in results for r in fr.rewrites]
    accepted = [r for r in rewrites if r.accepted]
    # grounding: every accepted rewrite is round-trippable C
    reparseable = all(
        unparse(parse_source(fr.rewritten_source)) == fr.rewritten_source
        for fr in results if fr.rewritten_source is not None
    )
    overhead = verified_s / unverified_s if unverified_s else float("inf")
    return {
        "files": len(named),
        "loops": len(rewrites),
        "accepted": len(accepted),
        "refused": sum(1 for r in rewrites
                       if not r.accepted and r.code != "not-parallel"),
        "unverified_s": round(unverified_s, 4),
        "verified_s": round(verified_s, 4),
        "verified_rewrites_per_s": round(len(accepted) / verified_s, 1)
        if verified_s else 0.0,
        "verifier_overhead": round(overhead, 2),
        "verify_efficiency": round(unverified_s / verified_s, 4)
        if verified_s else 0.0,
        "reparseable": reparseable,
    }


def test_rewrite_throughput(benchmark, context):
    result = run_once(benchmark, _measure, context)
    path = write_bench_artifact("rewrite", result)
    print(f"\nrewrite throughput: {result['accepted']}/{result['loops']} "
          f"loops verified-rewritten in {result['verified_s']}s "
          f"({result['verified_rewrites_per_s']}/s; verifier overhead "
          f"{result['verifier_overhead']}x) -> {path}")

    assert result["accepted"] >= MIN_ACCEPTED
    assert result["reparseable"]
    assert result["verifier_overhead"] <= MAX_OVERHEAD
