"""Bench: regenerate Figure 2 (category-wise loops missed by tools)."""

from conftest import run_once

from repro.eval import figure2


def test_figure2_missed_loops(benchmark, config):
    result = run_once(benchmark, figure2.run, config)
    print("\n" + result.render())

    by_tool = {r["tool"]: r for r in result.rows}
    assert set(by_tool) == {"pluto", "autopar", "discopop"}

    # Pluto cannot express reductions in the polyhedral model: it must
    # miss reduction loops (every one of them, in fact).
    pluto = by_tool["pluto"]
    assert pluto["loops_with_reduction"] > 0

    # Nested loops are a major miss category for the static tools
    # (paper: 2525 for Pluto, 948 for autoPar).
    assert pluto["nested_loops"] > 0
    assert by_tool["autopar"]["nested_loops"] > 0

    # Every tool misses some reduction loops (Figure 2's tallest bars).
    for tool, row in by_tool.items():
        assert row["loops_with_reduction"] > 0, tool

    # autoPar recognises single-statement reductions, so it must miss
    # fewer reduction loops than Pluto relative to its other misses.
    assert by_tool["autopar"]["loops_with_reduction"] <= \
        pluto["loops_with_reduction"]
