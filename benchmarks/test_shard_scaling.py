"""Bench: end-to-end corpus sharding + streaming vs the batch path.

``stream_dir(shards=N)`` runs the whole parse → encode → forward →
fan-out pipeline inside N worker processes and streams per-file results
back as they complete.  Two claims are measured on a synthetic corpus:

- *scaling*: with ≥2 cores, 2 shards must finish the corpus at least
  ``REQUIRED_SPEEDUP``× faster than the single-process batch path
  (the pipeline is CPU-bound pure python, so wall clock tracks the
  slowest shard);
- *latency*: the first streamed file must arrive before the full batch
  path would have delivered anything at all — streaming consumers
  start reading suggestions while later shards are still parsing.

Suggestions must be byte-identical across both paths, always.  On a
single-core runner the two timing assertions are skipped (forking
workers cannot beat the batch path without a second core), but the
``BENCH_shard_scaling.json`` trajectory artifact is emitted either way.
"""

import os
import time

from conftest import run_once, write_bench_artifact

from repro.dataset.corpus import CorpusGenerator
from repro.serve import ServeConfig, build_service

REQUIRED_SPEEDUP = 1.5
MIN_FILES = 12
SHARDS = 2


def _write_corpus(directory) -> int:
    # large enough that per-shard compute dwarfs worker startup: the
    # 2-shard ratio on CI runners must reflect the pipeline, not fork
    # overhead and scheduler noise
    _, files = CorpusGenerator(seed=29).generate(scale=0.012)
    for f in files:
        (directory / f"file_{f.file_id}.c").write_text(f.source)
    return len(files)


def _renders(results):
    return [(fs.name, fs.error, [s.render() for s in fs.suggestions])
            for fs in results]


def _shard_vs_batch(context, tmp_path) -> dict:
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    n_files = _write_corpus(corpus)
    serve_config = ServeConfig(workers=1, batch_size=512)

    # models come pre-trained from the shared context; workers inherit
    # them through the process spawn, so both sides measure only the
    # serving pipeline — best-of-2 per side for a stable CI ratio
    batch_s, batch_results = float("inf"), None
    for _ in range(2):
        service = build_service(context, serve_config)
        start = time.perf_counter()
        results = service.suggest_dir(corpus)
        elapsed = time.perf_counter() - start
        if elapsed < batch_s:
            batch_s, batch_results = elapsed, results

    shard_s, first_s, shard_results = float("inf"), float("inf"), None
    for _ in range(2):
        service = build_service(context, serve_config)
        start = time.perf_counter()
        results, first = [], None
        for fs in service.stream_dir(corpus, ordered=False,
                                     shards=SHARDS):
            if first is None:
                first = time.perf_counter() - start
            results.append(fs)
        elapsed = time.perf_counter() - start
        if elapsed < shard_s:
            shard_s, first_s, shard_results = elapsed, first, results

    identical = sorted(_renders(shard_results)) == \
        sorted(_renders(batch_results))
    n_loops = sum(len(fs.suggestions) for fs in batch_results)
    return {
        "files": n_files,
        "loops": n_loops,
        "cpus": os.cpu_count(),
        "shards": SHARDS,
        "batch_s": round(batch_s, 4),
        "sharded_s": round(shard_s, 4),
        "speedup": round(batch_s / shard_s, 2) if shard_s else 0.0,
        "first_result_s": round(first_s, 4),
        "first_vs_batch": round(first_s / batch_s, 3) if batch_s else 0.0,
        "identical": identical,
    }


def test_shard_scaling(benchmark, context, tmp_path):
    build_service(context)      # train once, outside the measured body
    result = run_once(benchmark, _shard_vs_batch, context, tmp_path)
    path = write_bench_artifact("shard_scaling", result)
    print(f"\nshard scaling: {result['files']} files / {result['loops']} "
          f"loops, batch {result['batch_s']}s vs {result['shards']} shards "
          f"{result['sharded_s']}s ({result['speedup']}x, first result at "
          f"{result['first_result_s']}s, {result['cpus']} cpus) -> {path}")

    assert result["files"] >= MIN_FILES
    # grounding: sharding must not change a single byte
    assert result["identical"]
    if (os.cpu_count() or 1) >= 2:
        # the whole point: two shards beat one process...
        assert result["speedup"] >= REQUIRED_SPEEDUP
        # ...and the first streamed file lands before the batch path
        # would have returned at all
        assert result["first_result_s"] < result["batch_s"]
